package scrub

import (
	"testing"

	"relaxfault/internal/core"
	"relaxfault/internal/dram"
	"relaxfault/internal/ecc"
	"relaxfault/internal/fault"
	"relaxfault/internal/stats"
)

func newScrubbedController(t *testing.T) (*core.Controller, *Scrubber) {
	t.Helper()
	c, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Controller: c, CEThreshold: 2, AutoRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

func rowFault(g dram.Geometry, dev dram.DeviceCoord, bank, row int) *fault.Fault {
	return &fault.Fault{
		Dev:  dev,
		Mode: fault.SingleRow,
		Extents: []fault.Extent{{
			BankLo: bank, BankHi: bank,
			Rows:  fault.OneRow(row),
			ColLo: 0, ColHi: g.Columns - 1,
		}},
	}
}

func TestScrubCleanMemoryIsSilent(t *testing.T) {
	_, s := newScrubbedController(t)
	events, err := s.ScrubRange(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("%d events on clean memory", len(events))
	}
	if s.Stats.LinesScrubbed != 1000 || s.Stats.CorrectedErrors != 0 {
		t.Errorf("stats %+v", s.Stats)
	}
	if s.Stats.HoursElapsed <= 0 {
		t.Error("no time accounted")
	}
}

func TestScrubDetectsAttributesAndRepairs(t *testing.T) {
	c, s := newScrubbedController(t)
	g := c.Mapper().Geometry()
	dev := dram.DeviceCoord{Channel: 2, Rank: 1, Device: 6}
	f := rowFault(g, dev, 3, 777)
	if err := c.InjectFault(f); err != nil {
		t.Fatal(err)
	}
	// Scrub the faulty row's extent: the second CE crosses the threshold,
	// the tracker infers a fault, and auto-repair masks it.
	events, err := s.ScrubExtent(dev.Channel, dev.Rank, f.Extents[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.FaultsInferred != 1 || s.Stats.Repairs != 1 {
		t.Fatalf("inferred=%d repairs=%d, want 1/1", s.Stats.FaultsInferred, s.Stats.Repairs)
	}
	// Attribution must name the faulty device.
	attributed := false
	for _, ev := range events {
		for _, d := range ev.Devices {
			if d == dev {
				attributed = true
			}
			if d.Channel != dev.Channel || d.Rank != dev.Rank {
				t.Errorf("CE attributed to wrong DIMM: %v", d)
			}
		}
	}
	if !attributed {
		t.Error("no CE attributed to the faulty device")
	}
	// Re-scrub: the region must now be clean.
	s2, _ := New(Config{Controller: c, CEThreshold: 2})
	events, err = s2.ScrubExtent(dev.Channel, dev.Rank, f.Extents[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Status != ecc.OK {
			t.Fatalf("post-repair scrub saw %v at %v", ev.Status, ev.Line)
		}
	}
	if s2.Stats.CorrectedErrors != 0 {
		t.Errorf("post-repair CEs: %d", s2.Stats.CorrectedErrors)
	}
}

func TestScrubPendingQueueWithoutAutoRepair(t *testing.T) {
	c, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Controller: c, CEThreshold: 2, AutoRepair: false})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Mapper().Geometry()
	dev := dram.DeviceCoord{Channel: 0, Rank: 0, Device: 11}
	f := rowFault(g, dev, 1, 50)
	if err := c.InjectFault(f); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ScrubExtent(dev.Channel, dev.Rank, f.Extents[0]); err != nil {
		t.Fatal(err)
	}
	if len(s.Pending) != 1 {
		t.Fatalf("pending %d, want 1 (per-device dedup)", len(s.Pending))
	}
	if s.Pending[0].Dev != dev {
		t.Errorf("pending fault attributed to %v", s.Pending[0].Dev)
	}
	if s.Stats.Repairs != 0 {
		t.Error("repair happened despite AutoRepair=false")
	}
	// Operator applies the pending repair explicitly.
	out, err := c.RepairFault(s.Pending[0].Fault)
	if err != nil || !out.Accepted {
		t.Fatalf("manual repair: %+v err=%v", out, err)
	}
}

func TestScrubReportsDUEs(t *testing.T) {
	c, s := newScrubbedController(t)
	g := c.Mapper().Geometry()
	devA := dram.DeviceCoord{Channel: 1, Rank: 0, Device: 2}
	devB := dram.DeviceCoord{Channel: 1, Rank: 0, Device: 9}
	fa, fb := rowFault(g, devA, 2, 99), rowFault(g, devB, 2, 99)
	if err := c.InjectFault(fa); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(fb); err != nil {
		t.Fatal(err)
	}
	events, err := s.ScrubExtent(devA.Channel, devA.Rank, fa.Extents[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.DUEs == 0 {
		t.Error("overlapping faults should raise scrub DUEs")
	}
	for _, ev := range events {
		if ev.Status == ecc.DUE && ev.Repaired {
			t.Error("DUE event marked repaired")
		}
	}
}

// TestScrubRandomFaultFleet: scrub-driven repair over sampled faulty nodes
// ends with every repairable small fault masked.
func TestScrubRandomFaultFleet(t *testing.T) {
	model, err := fault.NewModel(fault.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(55)
	repaired := 0
	for tested := 0; tested < 6; {
		nf := model.SampleNode(rng)
		var small []*fault.Fault
		for _, f := range nf.PermanentFaults() {
			if f.Mode == fault.SingleBit || f.Mode == fault.SingleRow {
				small = append(small, f)
			}
		}
		if len(small) == 0 {
			continue
		}
		tested++
		c, err := core.New(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Controller: c, CEThreshold: 2, AutoRepair: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range small {
			if err := c.InjectFault(f); err != nil {
				t.Fatal(err)
			}
		}
		for pass := 0; pass < 3; pass++ {
			for _, f := range small {
				if _, err := s.ScrubExtent(f.Dev.Channel, f.Dev.Rank, f.Extents[0]); err != nil {
					t.Fatal(err)
				}
			}
		}
		// A fault can legitimately need more than one inference (a
		// two-row fault is discovered one row at a time), so require at
		// least one repair per fault and a clean verification scrub.
		if int(s.Stats.Repairs) < len(small) {
			t.Fatalf("repaired %d of %d faults", s.Stats.Repairs, len(small))
		}
		verify, err := New(Config{Controller: c, CEThreshold: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range small {
			if _, err := verify.ScrubExtent(f.Dev.Channel, f.Dev.Rank, f.Extents[0]); err != nil {
				t.Fatal(err)
			}
		}
		if verify.Stats.CorrectedErrors != 0 || verify.Stats.DUEs != 0 {
			t.Fatalf("verification scrub still sees errors: %+v", verify.Stats)
		}
		repaired += int(s.Stats.Repairs)
	}
	if repaired == 0 {
		t.Fatal("no repairs exercised")
	}
}

func TestFullPassHours(t *testing.T) {
	c, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Controller: c, LinesPerHour: 1 << 26})
	if err != nil {
		t.Fatal(err)
	}
	// 2^30 lines at 2^26 lines/hour = 16 hours.
	if h := s.FullPassHours(); h != 16 {
		t.Errorf("full pass %f hours, want 16", h)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil controller accepted")
	}
}
