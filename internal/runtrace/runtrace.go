// Package runtrace is the execution-tracing layer of the simulators: a
// low-overhead span recorder whose output explains where parallel wall time
// actually goes — chunk execution, claim overhead, checkpoint/journal fsync
// stalls, and straggler-induced reduce waits. (The name avoids colliding
// with internal/trace, the memory-workload parser.)
//
// The recorder deals only in spans: a named interval on a track, optionally
// tagged with a chunk/section index and a trial count. Tracks map onto the
// parallel engine's workers (track = worker id >= 0) plus three synthetic
// tracks for the main goroutine, the checkpoint store, and the journal
// writer. Recording happens at chunk granularity and coarser — the
// per-trial hot path is never touched — so an instrumented campaign runs
// within a few percent of an untraced one, and a nil *Recorder makes every
// method a no-op so instrumentation can be unconditional (the same contract
// harness.Monitor and obs handles follow).
//
// Two consumers exist: WriteChrome renders the spans as Chrome trace_event
// JSON loadable in Perfetto (ui.perfetto.dev) or chrome://tracing with one
// named thread per track, and Analyze folds them into a scheduler-
// attribution Report (per-worker busy/claim/fsync/reduce-wait/idle
// percentages, straggler chunks, a critical-path estimate) that the CLI
// embeds in the run manifest and publishes as runtrace.* metrics.
package runtrace

import (
	"sort"
	"sync"
	"time"
)

// Synthetic track ids. Worker tracks use the worker id itself (>= 0).
const (
	// TrackMain carries campaign/experiment/section-level spans recorded
	// by the main goroutine.
	TrackMain = -1
	// TrackCheckpoint carries checkpoint snapshot flushes (marshal +
	// write + fsync + rename + directory fsync).
	TrackCheckpoint = -2
	// TrackJournal carries journal appends (write + fsync, serialized by
	// the writer's mutex — the track directly shows fsync serialization).
	TrackJournal = -3
)

// Span names the engine and simulators record. The analyzer dispatches on
// these; everything else is informational detail in the exported trace.
const (
	// SpanChunk covers one work() invocation of the parallel engine: the
	// chunk's whole execution including any nested checkpoint span.
	SpanChunk = "chunk"
	// SpanClaim covers the inter-chunk engine overhead on a worker: from
	// finishing the previous chunk's work (bookkeeping, monitor, claim
	// cursor) to starting the next chunk.
	SpanClaim = "claim"
	// SpanCheckpoint covers a worker's synchronous durability stall: the
	// PutSpan call (journal append + fsync, then snapshot entry and any
	// rate-limited flush). Nested inside SpanChunk.
	SpanCheckpoint = "checkpoint"
	// SpanReduceWait covers a retired worker waiting for the rest of the
	// pool to drain: from the worker's last chunk to engine completion.
	// Long spans here name the stragglers' victims.
	SpanReduceWait = "reduce-wait"
)

// Span is one recorded interval. Start and End are monotonic nanoseconds
// since the recorder's epoch (see Recorder.Epoch for the wall-clock
// anchor).
type Span struct {
	Track int    `json:"track"`
	Name  string `json:"name"`
	// Chunk is the chunk or section index the span covers, -1 when the
	// span is not chunk-scoped.
	Chunk  int   `json:"chunk"`
	Trials int64 `json:"trials,omitempty"`
	Start  int64 `json:"start_ns"`
	End    int64 `json:"end_ns"`
}

// Seconds returns the span's duration.
func (s Span) Seconds() float64 { return float64(s.End-s.Start) / 1e9 }

// track is one append-only span buffer. Within one engine run a worker
// track has a single writer, so its mutex is uncontended; it exists so
// sequential engine runs, the post-drain reduce-wait records, and export
// snapshots are race-free without any caller discipline.
type track struct {
	mu    sync.Mutex
	spans []Span
}

// Recorder collects spans across tracks. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so instrumented code
// paths need no branches and tracing costs nothing when disabled.
type Recorder struct {
	epoch  time.Time // wall-clock anchor; time.Since(epoch) is monotonic
	mu     sync.RWMutex
	tracks map[int]*track
}

// New returns an empty recorder whose epoch is now.
func New() *Recorder {
	return &Recorder{epoch: time.Now(), tracks: make(map[int]*track)}
}

// Enabled reports whether spans are being recorded (r != nil); callers that
// would do real work to assemble a span can skip it when disabled.
func (r *Recorder) Enabled() bool { return r != nil }

// Epoch returns the wall-clock time of nanosecond 0.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Now returns monotonic nanoseconds since the epoch (0 on a nil recorder).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch).Nanoseconds()
}

// buf returns the track's buffer, creating it if absent.
func (r *Recorder) buf(id int) *track {
	r.mu.RLock()
	t := r.tracks[id]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.tracks[id]; t == nil {
		t = &track{}
		r.tracks[id] = t
	}
	return t
}

// Record appends one span with explicit endpoints (tests and the engine's
// post-drain reduce-wait records use it; most call sites use Span).
func (r *Recorder) Record(trackID int, name string, chunk int, trials int64, start, end int64) {
	if r == nil {
		return
	}
	t := r.buf(trackID)
	t.mu.Lock()
	t.spans = append(t.spans, Span{Track: trackID, Name: name, Chunk: chunk, Trials: trials, Start: start, End: end})
	t.mu.Unlock()
}

// Span records an interval from start (a prior Now() reading) to now.
func (r *Recorder) Span(trackID int, name string, chunk int, trials int64, start int64) {
	if r == nil {
		return
	}
	r.Record(trackID, name, chunk, trials, start, r.Now())
}

// Spans returns a stable snapshot of every recorded span, ordered by track
// (main, checkpoint, journal, then workers ascending), start time, end
// time, and name.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	ids := make([]int, 0, len(r.tracks))
	for id := range r.tracks {
		ids = append(ids, id)
	}
	bufs := make([]*track, 0, len(ids))
	sort.Ints(ids)
	for _, id := range ids {
		bufs = append(bufs, r.tracks[id])
	}
	r.mu.RUnlock()
	var out []Span
	for _, t := range bufs {
		t.mu.Lock()
		out = append(out, t.spans...)
		t.mu.Unlock()
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Track != out[b].Track {
			return trackOrder(out[a].Track) < trackOrder(out[b].Track)
		}
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		if out[a].End != out[b].End {
			return out[a].End < out[b].End
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// trackOrder sorts synthetic tracks (main, checkpoint, journal) before the
// worker tracks.
func trackOrder(id int) int {
	switch id {
	case TrackMain:
		return 0
	case TrackCheckpoint:
		return 1
	case TrackJournal:
		return 2
	default:
		return 3 + id
	}
}
