package relsim

import (
	"fmt"
	"math"

	"relaxfault/internal/fault"
	"relaxfault/internal/stats"
)

// Estimator names accepted by StatsConfig.Estimator.
const (
	// EstimatorNaive draws each node from the physical fault-arrival
	// process with weight 1 — the bit-identical refactor of the original
	// hardwired accumulation path.
	EstimatorNaive = "naive"
	// EstimatorImportance oversamples the fault-arrival process (boosted
	// Poisson arrival counts on every node) and reweights each trial by
	// the likelihood ratio of the physical process against the proposal.
	EstimatorImportance = "importance"
	// EstimatorStratified allocates trials round-robin across the
	// (mode, persistence) first-arrival strata of the fault model and
	// reweights by the stratum probability; the "no faults" stratum
	// contributes exactly zero and is never simulated.
	EstimatorStratified = "stratified"
)

// DefaultBoost is the arrival-count boost used by the importance estimator
// when StatsConfig.Boost is zero. The sampler bounds the effective boost
// per node so likelihood-ratio weights stay within e² of unity (see
// fault.SampleNodeBiased), which keeps this default safe even on models
// with strongly accelerated nodes.
const DefaultBoost = 8.0

// DefaultMinTrials is the minimum trial count before the sequential
// stopping rule may fire when StatsConfig.MinTrials is zero: two full
// chunks, enough for the variance estimate to stabilise.
const DefaultMinTrials = 2 * chunkSize

// StatsConfig selects the estimator driving a run's trial pipeline and,
// optionally, a Chow–Robbins sequential stopping rule. A nil (or zero)
// StatsConfig reproduces the original pipeline byte for byte and is
// excluded from fingerprints, so every pre-existing configuration keeps
// its fingerprint, checkpoints, and journals.
type StatsConfig struct {
	// Estimator is one of EstimatorNaive, EstimatorImportance, or
	// EstimatorStratified ("" selects naive).
	Estimator string
	// Boost is the importance estimator's arrival-count multiplier
	// (0 selects DefaultBoost; ignored by the other estimators).
	Boost float64
	// TargetCI, when positive, enables sequential stopping: the run stops
	// at the first chunk boundary where the 95% CI half-widths of both the
	// per-system DUE and SDC expectations fall to TargetCI or below.
	TargetCI float64
	// MinTrials is the minimum number of trials before the stopping rule
	// may fire (0 selects DefaultMinTrials). It guards against the
	// stopping rule firing off an early variance estimate of zero.
	MinTrials int
	// MaxTrials, when positive, caps the total trial budget (the run
	// simulates min(Nodes*Replicas, MaxTrials) trials and scales the
	// expectations back to per-system values).
	MaxTrials int
}

// active reports whether s selects anything beyond the legacy pipeline.
func (s *StatsConfig) active() bool {
	return s != nil && *s != StatsConfig{}
}

// estimatorName resolves the estimator name ("" defaults to naive).
func (s *StatsConfig) estimatorName() string {
	if s == nil || s.Estimator == "" {
		return EstimatorNaive
	}
	return s.Estimator
}

// boost resolves the importance-sampling boost.
func (s *StatsConfig) boost() float64 {
	if s == nil || s.Boost == 0 {
		return DefaultBoost
	}
	return s.Boost
}

// minTrials resolves the sequential-stopping warm-up floor.
func (s *StatsConfig) minTrials() int {
	if s == nil || s.MinTrials == 0 {
		return DefaultMinTrials
	}
	return s.MinTrials
}

// validate reports the first statistics-configuration error, if any.
func (s *StatsConfig) validate() error {
	if !s.active() {
		return nil
	}
	switch s.estimatorName() {
	case EstimatorNaive, EstimatorImportance, EstimatorStratified:
	default:
		return fmt.Errorf("relsim: unknown estimator %q (want %s, %s, or %s)",
			s.Estimator, EstimatorNaive, EstimatorImportance, EstimatorStratified)
	}
	if s.Boost < 0 {
		return fmt.Errorf("relsim: estimator boost must be non-negative, got %v", s.Boost)
	}
	if s.Boost > 0 && s.Boost < 1 {
		return fmt.Errorf("relsim: estimator boost %v would undersample faults; boosts below 1 are not supported", s.Boost)
	}
	if s.TargetCI < 0 {
		return fmt.Errorf("relsim: TargetCI must be non-negative, got %v", s.TargetCI)
	}
	if s.MinTrials < 0 {
		return fmt.Errorf("relsim: MinTrials must be non-negative, got %d", s.MinTrials)
	}
	if s.MaxTrials < 0 {
		return fmt.Errorf("relsim: MaxTrials must be non-negative, got %d", s.MaxTrials)
	}
	return nil
}

// estimator is the trial-sampling strategy: it draws one node's fault
// history and reports the importance weight that makes the weighted trial
// an unbiased estimate under the physical process. Implementations must be
// deterministic functions of (rng stream, node) so that replay, checkpoint
// resume, and the scheduling differential all reproduce identical bytes.
type estimator interface {
	name() string
	sampleNode(rng *stats.RNG, sc *fault.SampleScratch, node int) (fault.NodeFaults, float64)
}

// naiveEstimator samples the physical process with weight 1.
type naiveEstimator struct{ model *fault.Model }

func (naiveEstimator) name() string { return EstimatorNaive }

func (e naiveEstimator) sampleNode(rng *stats.RNG, sc *fault.SampleScratch, _ int) (fault.NodeFaults, float64) {
	return e.model.SampleNodeScratch(rng, sc), 1
}

// importanceEstimator boosts the fault-arrival counts and reweights by
// the Poisson likelihood ratio.
type importanceEstimator struct {
	model *fault.Model
	boost float64
}

func (importanceEstimator) name() string { return EstimatorImportance }

func (e importanceEstimator) sampleNode(rng *stats.RNG, sc *fault.SampleScratch, _ int) (fault.NodeFaults, float64) {
	nf, logLR := e.model.SampleNodeBiased(rng, sc, e.boost)
	return nf, math.Exp(logLR)
}

// stratifiedEstimator allocates trials round-robin over the nonzero
// first-arrival strata; the sampler's raw weight already includes the
// stratum probability and the ≥1-fault conditioning, so the only caller
// factor is the rotation count.
type stratifiedEstimator struct {
	model  *fault.Model
	strata []int
}

func (stratifiedEstimator) name() string { return EstimatorStratified }

func (e stratifiedEstimator) sampleNode(rng *stats.RNG, sc *fault.SampleScratch, node int) (fault.NodeFaults, float64) {
	s := e.strata[node%len(e.strata)]
	nf, w := e.model.SampleNodeStratified(rng, sc, s)
	return nf, w * float64(len(e.strata))
}

func newStratifiedEstimator(model *fault.Model) (*stratifiedEstimator, error) {
	var strata []int
	for s := 0; s < model.NumStrata(); s++ {
		if model.StratumProb(s) > 0 {
			strata = append(strata, s)
		}
	}
	if len(strata) == 0 {
		return nil, fmt.Errorf("relsim: stratified estimator: no fault class has positive rate")
	}
	return &stratifiedEstimator{model: model, strata: strata}, nil
}

// newEstimator builds the configured estimator, or nil when s selects the
// legacy pipeline (nil StatsConfig ⇒ no estimator object at all, so the
// hot path keeps its original shape).
func (s *StatsConfig) newEstimator(model *fault.Model) (estimator, error) {
	if !s.active() {
		return nil, nil
	}
	switch s.estimatorName() {
	case EstimatorNaive:
		return naiveEstimator{model: model}, nil
	case EstimatorImportance:
		return importanceEstimator{model: model, boost: s.boost()}, nil
	case EstimatorStratified:
		return newStratifiedEstimator(model)
	default:
		return nil, fmt.Errorf("relsim: unknown estimator %q", s.Estimator)
	}
}

// estTally is the per-chunk estimator state: Welford accumulators over the
// weighted per-trial DUE and SDC contributions (what the stopping rule
// watches) plus the weight statistics behind the effective sample size.
// It is part of the chunk checkpoint payload, so it must round-trip
// through JSON bit for bit (stats.MeanVar and stats.WeightStats do).
type estTally struct {
	DUE stats.MeanVar     `json:"due"`
	SDC stats.MeanVar     `json:"sdc"`
	W   stats.WeightStats `json:"w"`
}

// observe records one weighted trial.
func (t *estTally) observe(w, due, sdc float64) {
	t.DUE.Add(w * due)
	t.SDC.Add(w * sdc)
	t.W.Add(w)
}

// merge folds o into t (chunk-index order gives deterministic bytes).
func (t *estTally) merge(o *estTally) {
	t.DUE.Merge(&o.DUE)
	t.SDC.Merge(&o.SDC)
	t.W.Merge(&o.W)
}

// ciMet reports whether m's 95% half-width, scaled to a per-system
// expectation, has reached the target on actual evidence. A zero half-width
// from zero observed events is no information: the per-trial contributions
// are non-negative, so Mean == 0 && M2 == 0 means no event has been seen
// yet, and letting that degenerate [0, 0] interval satisfy the rule would
// stop every rare-event run spuriously at the warm-up floor.
func ciMet(m *stats.MeanVar, scale, target float64) bool {
	if m.Mean == 0 && m.M2 == 0 {
		return false
	}
	return scale*m.HalfWidth95() <= target
}

// runPayload is the chunk checkpoint payload of Run. Result is embedded,
// so with a nil Est the JSON encoding is byte-identical to the bare Result
// the pre-estimator checkpoints stored — old checkpoints decode into new
// runs and naive runs write old-format bytes.
type runPayload struct {
	Result
	Est *estTally `json:"est,omitempty"`
}

// EstimatorReport summarises an estimator-driven run: it rides on Result
// so manifests, benches, and the CLI can show what the estimator bought.
type EstimatorReport struct {
	// Name is the estimator that produced the run.
	Name string `json:"name"`
	// Trials is the number of trials actually simulated; BudgetTrials is
	// what the configuration would have run without sequential stopping.
	Trials       int64 `json:"trials"`
	BudgetTrials int64 `json:"budget_trials"`
	// DUEHalfWidth and SDCHalfWidth are the final per-system 95% CI
	// half-widths of the two stopping-rule targets.
	DUEHalfWidth float64 `json:"due_half_width"`
	SDCHalfWidth float64 `json:"sdc_half_width"`
	// ESS is the Kish effective sample size of the importance weights.
	ESS float64 `json:"ess"`
	// Stopped reports whether the sequential stopping rule fired (as
	// opposed to the run exhausting its trial budget).
	Stopped bool `json:"stopped"`
}
