package dram

import "fmt"

// CellPredicate reports whether a fault covers the cell at (bank, row, col)
// within one device. Predicates must be pure: the array may evaluate them in
// any order and any number of times.
type CellPredicate func(bank, row, col int) bool

// StuckFault describes a permanent fault in one device as a region of cells
// that no longer store data. Reads of covered cells return the stuck value
// instead of the stored bits; writes to covered cells are lost.
type StuckFault struct {
	Dev      DeviceCoord
	Covers   CellPredicate
	StuckVal uint8 // low BitsPerColumn bits are the value every covered column reads as
}

// SubBlock is the 4-byte contribution of a single device to one cacheline:
// BurstLength consecutive columns of BitsPerColumn bits each, packed
// little-endian (column i occupies bits [4i, 4i+4)).
type SubBlock uint32

// Line is the per-device decomposition of one cacheline access across a
// rank: element i is device i's sub-block (data devices first, then check
// devices).
type Line []SubBlock

// Array is a functional DRAM store for one node. It holds only lines that
// have been written (sparse map), which keeps multi-GiB geometries cheap to
// model, and applies stuck-bit corruption from registered faults on every
// read. Array is not safe for concurrent use; the simulators own one array
// per goroutine.
type Array struct {
	geo    Geometry
	lines  map[Location]Line
	faults map[DeviceCoord][]*StuckFault
}

// NewArray creates an empty array for the given geometry.
func NewArray(g Geometry) (*Array, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Array{
		geo:    g,
		lines:  make(map[Location]Line),
		faults: make(map[DeviceCoord][]*StuckFault),
	}, nil
}

// Geometry returns the array's geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// InjectFault registers a permanent stuck-at fault. Cells already written
// are corrupted retroactively (their stored value is unchanged, but reads
// will see the stuck value), exactly as a real fault would behave.
func (a *Array) InjectFault(f *StuckFault) error {
	if f == nil || f.Covers == nil {
		return fmt.Errorf("dram: nil fault or predicate")
	}
	if f.Dev.Channel < 0 || f.Dev.Channel >= a.geo.Channels ||
		f.Dev.Rank < 0 || f.Dev.Rank >= a.geo.DIMMsPerChan ||
		f.Dev.Device < 0 || f.Dev.Device >= a.geo.DevicesPerDIMM() {
		return fmt.Errorf("dram: fault device %v out of range", f.Dev)
	}
	a.faults[f.Dev] = append(a.faults[f.Dev], f)
	return nil
}

// FaultCount returns the number of injected faults.
func (a *Array) FaultCount() int {
	n := 0
	for _, fs := range a.faults {
		n += len(fs)
	}
	return n
}

// Write stores the cacheline at loc. len(line) must equal the device count
// per DIMM. The stored value is the written value; corruption is applied at
// read time so that repairs which stop reading faulty cells observe clean
// data again.
func (a *Array) Write(loc Location, line Line) error {
	if !loc.Valid(a.geo) {
		return fmt.Errorf("dram: write to invalid location %v", loc)
	}
	if len(line) != a.geo.DevicesPerDIMM() {
		return fmt.Errorf("dram: write with %d sub-blocks, want %d", len(line), a.geo.DevicesPerDIMM())
	}
	stored := make(Line, len(line))
	copy(stored, line)
	a.lines[loc] = stored
	return nil
}

// Read returns the cacheline at loc with fault corruption applied.
// Unwritten lines read as zero (before corruption). The returned slice is
// freshly allocated and owned by the caller.
func (a *Array) Read(loc Location) (Line, error) {
	if !loc.Valid(a.geo) {
		return nil, fmt.Errorf("dram: read from invalid location %v", loc)
	}
	ndev := a.geo.DevicesPerDIMM()
	out := make(Line, ndev)
	if stored, ok := a.lines[loc]; ok {
		copy(out, stored)
	}
	for dev := 0; dev < ndev; dev++ {
		dc := DeviceCoord{Channel: loc.Channel, Rank: loc.Rank, Device: dev}
		faults := a.faults[dc]
		if len(faults) == 0 {
			continue
		}
		out[dev] = corrupt(out[dev], loc, faults)
	}
	return out, nil
}

// DeviceFaultyAt reports whether any registered fault on dev covers any
// column of the block at loc.
func (a *Array) DeviceFaultyAt(dev DeviceCoord, loc Location) bool {
	for _, f := range a.faults[dev] {
		for c := 0; c < BurstLength; c++ {
			col := loc.ColBlock*ColumnsPerBlock + c
			if f.Covers(loc.Bank, loc.Row, col) {
				return true
			}
		}
	}
	return false
}

// corrupt replaces each faulty column's nibble with the fault's stuck value.
func corrupt(sb SubBlock, loc Location, faults []*StuckFault) SubBlock {
	for _, f := range faults {
		for c := 0; c < BurstLength; c++ {
			col := loc.ColBlock*ColumnsPerBlock + c
			if f.Covers(loc.Bank, loc.Row, col) {
				shift := uint(c * BitsPerColumn)
				mask := SubBlock((1<<BitsPerColumn)-1) << shift
				sb = (sb &^ mask) | (SubBlock(f.StuckVal&0xF) << shift)
			}
		}
	}
	return sb
}

// LineToBytes flattens the data-device sub-blocks of a line into the 64-byte
// cacheline image the processor sees. Device d contributes bytes
// [d*DeviceBytesPerLine, (d+1)*DeviceBytesPerLine).
func LineToBytes(g Geometry, line Line) []byte {
	out := make([]byte, g.LineBytes)
	for d := 0; d < g.DataDevices; d++ {
		sb := line[d]
		for b := 0; b < DeviceBytesPerLine; b++ {
			out[d*DeviceBytesPerLine+b] = byte(sb >> (8 * uint(b)))
		}
	}
	return out
}

// BytesToLine packs a 64-byte cacheline image into data-device sub-blocks,
// leaving check-device sub-blocks zero (the ECC layer fills them).
func BytesToLine(g Geometry, data []byte) (Line, error) {
	if len(data) != g.LineBytes {
		return nil, fmt.Errorf("dram: cacheline must be %d bytes, got %d", g.LineBytes, len(data))
	}
	line := make(Line, g.DevicesPerDIMM())
	for d := 0; d < g.DataDevices; d++ {
		var sb SubBlock
		for b := 0; b < DeviceBytesPerLine; b++ {
			sb |= SubBlock(data[d*DeviceBytesPerLine+b]) << (8 * uint(b))
		}
		line[d] = sb
	}
	return line, nil
}
