package harness

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relaxfault/internal/runtrace"
)

func TestEngineRunsEveryChunkExactlyOnce(t *testing.T) {
	const n = 257
	var mu sync.Mutex
	seen := make(map[int]int)
	workersSeen := make(map[int]bool)
	e := Engine{Workers: 4}
	err := e.Run(context.Background(), n, func(w, k int) (int64, bool) {
		mu.Lock()
		seen[k]++
		workersSeen[w] = true
		mu.Unlock()
		return 1, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("covered %d chunks, want %d", len(seen), n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("chunk %d ran %d times", k, c)
		}
	}
	for w := range workersSeen {
		if w < 0 || w >= 4 {
			t.Errorf("worker id %d outside pool", w)
		}
	}
}

func TestEngineWorkerRetire(t *testing.T) {
	// A worker returning cont=false stops claiming; with one worker the
	// remaining chunks are never run.
	var ran atomic.Int64
	e := Engine{Workers: 1}
	err := e.Run(context.Background(), 100, func(_, k int) (int64, bool) {
		ran.Add(1)
		return 0, k < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 5 {
		t.Errorf("ran %d chunks, want 5 (chunks 0-3 continue, chunk 4 retires)", got)
	}
}

func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	e := Engine{Workers: 2}
	err := e.Run(ctx, 1000, func(_, k int) (int64, bool) {
		if ran.Add(1) == 3 {
			cancel()
		}
		return 1, true
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Errorf("cancellation did not stop the pool (ran %d chunks)", got)
	}
}

func TestEnginePoolClampedToChunks(t *testing.T) {
	var maxW atomic.Int64
	e := Engine{Workers: 16}
	if err := e.Run(context.Background(), 3, func(w, _ int) (int64, bool) {
		if int64(w) > maxW.Load() {
			maxW.Store(int64(w))
		}
		return 1, true
	}); err != nil {
		t.Fatal(err)
	}
	if maxW.Load() > 2 {
		t.Errorf("worker id %d seen with only 3 chunks", maxW.Load())
	}
}

func TestEngineFeedsMonitor(t *testing.T) {
	var buf bytes.Buffer
	m := NewMonitor(&buf, 0)
	m.Expect(8)
	e := Engine{Workers: 2, Mon: m}
	if err := e.Run(context.Background(), 8, func(_, _ int) (int64, bool) {
		return 1, true
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.DoneTrials(); got != 8 {
		t.Errorf("monitor counted %d trials, want 8", got)
	}
}

// TestEngineTraceAttribution runs a traced engine and checks the analyzed
// report's accounting invariants: every chunk appears as a span on some
// worker track, and each worker's five categories partition the wall window
// (within a small tolerance for the clamping Analyze applies).
func TestEngineTraceAttribution(t *testing.T) {
	const chunks, workers = 12, 3
	tr := runtrace.New()
	e := Engine{Workers: workers, Trace: tr}
	if err := e.Run(context.Background(), chunks, func(_, _ int) (int64, bool) {
		time.Sleep(2 * time.Millisecond)
		return 5, true
	}); err != nil {
		t.Fatal(err)
	}

	rep := runtrace.Analyze(tr)
	if len(rep.Workers) != workers {
		t.Fatalf("attribution covers %d workers, want %d", len(rep.Workers), workers)
	}
	if rep.WallSeconds <= 0 {
		t.Fatalf("wall = %v", rep.WallSeconds)
	}
	totalChunks, totalTrials := 0, int64(0)
	for _, w := range rep.Workers {
		if w.Chunks == 0 {
			t.Errorf("worker %d recorded no chunk spans", w.Worker)
		}
		totalChunks += w.Chunks
		totalTrials += w.Trials
		sum := w.BusySeconds + w.ClaimSeconds + w.CheckpointSeconds + w.ReduceWaitSeconds + w.IdleSeconds
		if diff := sum - rep.WallSeconds; diff > 0.05*rep.WallSeconds || diff < -0.05*rep.WallSeconds {
			t.Errorf("worker %d categories sum to %vs, wall %vs", w.Worker, sum, rep.WallSeconds)
		}
		for _, p := range []float64{w.BusyPct, w.ClaimPct, w.CheckpointPct, w.ReduceWaitPct, w.IdlePct} {
			if p < 0 || p > 100 {
				t.Errorf("worker %d percentage %v outside [0,100]", w.Worker, p)
			}
		}
	}
	if totalChunks != chunks {
		t.Errorf("chunk spans cover %d chunks, want %d", totalChunks, chunks)
	}
	if totalTrials != chunks*5 {
		t.Errorf("trials = %d, want %d", totalTrials, chunks*5)
	}
	if rep.CriticalPathSeconds <= 0 || rep.CriticalPathSeconds > rep.WallSeconds*1.01 {
		t.Errorf("critical path %vs vs wall %vs", rep.CriticalPathSeconds, rep.WallSeconds)
	}

	// A nil tracer on the engine is the untraced default: no spans, no cost.
	e2 := Engine{Workers: 2}
	if err := e2.Run(context.Background(), 4, func(_, _ int) (int64, bool) { return 1, true }); err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogNamesStalledWorker(t *testing.T) {
	var buf bytes.Buffer
	m := NewMonitor(&buf, time.Second)
	m.Expect(1000)
	m.StartWorkers(2)
	// Worker 0 keeps completing chunks; worker 1 went silent a minute ago.
	m.WorkerDone(0, 10)
	m.mu.Lock()
	m.workerLast[1] = time.Now().Add(-time.Minute).UnixNano()
	m.mu.Unlock()
	m.report(time.Now())
	out := buf.String()
	if !strings.Contains(out, "worker 1/2 stalled") {
		t.Errorf("stalled worker not named:\n%s", out)
	}
	if strings.Contains(out, "worker 0/2 stalled") {
		t.Errorf("healthy worker reported stalled:\n%s", out)
	}
	if strings.Contains(out, "no worker progress") {
		t.Errorf("global watchdog fired while worker 0 was advancing:\n%s", out)
	}

	// The warning latches: a second report does not repeat it.
	buf.Reset()
	m.report(time.Now())
	if strings.Contains(buf.String(), "stalled") {
		t.Errorf("per-worker watchdog fired twice:\n%s", buf.String())
	}

	// Progress from the stalled worker re-arms its watchdog.
	m.WorkerDone(1, 1)
	m.mu.Lock()
	m.workerLast[1] = time.Now().Add(-time.Minute).UnixNano()
	m.mu.Unlock()
	buf.Reset()
	m.report(time.Now())
	if !strings.Contains(buf.String(), "worker 1/2 stalled") {
		t.Errorf("per-worker watchdog did not re-arm:\n%s", buf.String())
	}

	// FinishWorkers ends tracking; an idle pool after the run is silent.
	m.FinishWorkers()
	buf.Reset()
	m.report(time.Now().Add(2 * time.Minute))
	if strings.Contains(buf.String(), "stalled") {
		t.Errorf("watchdog warned about a finished pool:\n%s", buf.String())
	}
}
