package journal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"relaxfault/internal/journal/faultfs"
)

// appendUntilFault appends chunk records through a fault-injecting file
// until an Append fails, returning how many records (including the open
// record) were durably acknowledged.
func appendUntilFault(t *testing.T, path string, trigger int64, mode faultfs.Mode) (acked int, appendErr error) {
	t.Helper()
	under, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff := faultfs.New(under, trigger, mode)
	w := NewWriter(ff)
	if err := w.Append(Record{Type: TypeOpen, Schema: Schema, Seed: 1}); err != nil {
		return 0, err
	}
	acked = 1
	for i := 0; i < 100; i++ {
		if err := w.AppendChunk("run-x", "x", i, i*10, (i+1)*10, Digest([]byte{byte(i)})); err != nil {
			return acked, err
		}
		acked++
	}
	t.Fatalf("fault at offset %d never fired within 100 records", trigger)
	return acked, nil
}

func TestCrashPointKeepsAckedRecords(t *testing.T) {
	// Sweep the kill offset across record boundaries and interiors: for
	// every N, recovery must yield exactly the records that were
	// acknowledged (write+fsync completed) before the crash.
	for _, trigger := range []int64{1, 50, 137, 200, 333, 512, 777} {
		path := filepath.Join(t.TempDir(), "c.journal")
		acked, appendErr := appendUntilFault(t, path, trigger, faultfs.Crash)
		if appendErr == nil {
			t.Fatalf("trigger %d: crash never surfaced", trigger)
		}
		if !errors.Is(appendErr, faultfs.ErrCrashed) {
			t.Fatalf("trigger %d: unexpected error %v", trigger, appendErr)
		}
		if acked == 0 {
			// Not even the open record landed; nothing to recover.
			if _, err := Load(path); err == nil {
				t.Fatalf("trigger %d: empty journal loaded successfully", trigger)
			}
			continue
		}
		j, err := Recover(path)
		if err != nil {
			t.Fatalf("trigger %d: Recover: %v", trigger, err)
		}
		if j.Records != acked {
			t.Fatalf("trigger %d: recovered %d records, %d were acknowledged", trigger, j.Records, acked)
		}
	}
}

func TestTornWriteDroppedOnRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	acked, appendErr := appendUntilFault(t, path, 260, faultfs.Torn)
	if appendErr == nil {
		t.Fatal("torn write never surfaced (fsync should have failed)")
	}
	// The torn record's Write claimed success, so its prefix is on disk;
	// the failed fsync means it was never acknowledged. Recovery must drop
	// the half-record and keep exactly the acked prefix.
	j, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if j.Records != acked {
		t.Fatalf("recovered %d records, %d were acknowledged", j.Records, acked)
	}
	if j.TornBytes == 0 {
		t.Fatal("torn write left no torn tail to report")
	}
}

func TestShortWriteLatchesWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	acked, appendErr := appendUntilFault(t, path, 260, faultfs.Short)
	if !errors.Is(appendErr, io.ErrShortWrite) {
		t.Fatalf("want io.ErrShortWrite, got %v", appendErr)
	}
	// A writer that saw any write error must refuse further appends: the
	// file position is unknown, appending would interleave garbage.
	under, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	w := NewWriter(faultfs.New(under, -1, faultfs.Crash))
	w.err = appendErr // simulate the latched writer continuing
	if err := w.AppendChunk("run-x", "x", 999, 0, 1, "d"); err == nil {
		t.Fatal("latched writer accepted an append")
	}
	under.Close()
	j, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if j.Records != acked {
		t.Fatalf("recovered %d records, %d were acknowledged", j.Records, acked)
	}
}

func TestWriterLatchesAfterFirstError(t *testing.T) {
	under, err := os.OpenFile(filepath.Join(t.TempDir(), "c.journal"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff := faultfs.New(under, 10, faultfs.Crash)
	w := NewWriter(ff)
	if err := w.Append(Record{Type: TypeOpen, Schema: Schema}); err == nil {
		t.Fatal("append across the crash point succeeded")
	}
	if w.Err() == nil {
		t.Fatal("error not latched")
	}
	if err := w.AppendChunk("s", "fp", 0, 0, 1, "d"); err == nil {
		t.Fatal("append after latched error succeeded")
	}
}
