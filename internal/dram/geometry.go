// Package dram models the organisation of a DIMM-based DDR3/DDR4 memory
// system at the granularity the RelaxFault paper reasons about: channels,
// DIMMs (one rank per DIMM in the evaluated configuration), x4 devices,
// banks, subarrays, rows, and columns.
//
// Two views are provided:
//
//   - Geometry: pure arithmetic over the hierarchy (sizes, index ranges,
//     conversions) used by the address-mapping and fault-injection code.
//   - Array: a functional store that actually holds data per device and
//     applies stuck-bit corruption from injected faults, used by the
//     end-to-end repair pipeline in internal/core.
package dram

import "fmt"

// Standard dimensions of the evaluated system (paper §4, Figure 7):
// 8GiB ECC DIMMs built from 18 x4 4Gb DDR3 devices (16 data + 2 check),
// 8 banks per device, 64Ki rows, 2Ki columns per row, 4 bits per column.
const (
	// BitsPerColumn is the data width of one x4 device: one column address
	// selects 4 bits.
	BitsPerColumn = 4

	// BurstLength is the DDR3 burst: one CAS transfers 8 consecutive
	// columns, so each device contributes 32 bits = 4 bytes per burst.
	BurstLength = 8

	// ColumnsPerBlock is the number of columns a single cacheline transfer
	// consumes from each device (equal to the burst length).
	ColumnsPerBlock = BurstLength

	// DeviceBytesPerLine is the number of bytes a single x4 device
	// contributes to one 64B cacheline (the RelaxFault sub-block size).
	DeviceBytesPerLine = BitsPerColumn * BurstLength / 8 // 4 bytes

	// SubarrayRows is the number of rows per subarray (tile); a column
	// (bitline) fault is physically confined to one subarray.
	SubarrayRows = 512

	// CachelineBytes is the memory transfer block size.
	CachelineBytes = 64
)

// Geometry describes one node's memory system. All counts must be powers of
// two; Validate enforces this so the bit-slicing address maps are exact.
type Geometry struct {
	Channels      int // memory channels per node
	DIMMsPerChan  int // DIMMs (= ranks) per channel
	DataDevices   int // data devices per rank (16 for x4 chipkill DIMMs)
	CheckDevices  int // ECC devices per rank (2 for chipkill)
	Banks         int // banks per device
	Rows          int // rows per bank
	Columns       int // columns per row (per device)
	LineBytes     int // cacheline / transfer block size in bytes
	ColumnsPerBlk int // columns consumed per cacheline from each device
}

// Default8GiBNode returns the configuration evaluated throughout the paper:
// 4 channels x 2 DIMMs of 8GiB, each DIMM 18 x4 devices (16 data + 2 check),
// 8 banks, 64Ki rows, 2Ki columns.
func Default8GiBNode() Geometry {
	return Geometry{
		Channels:      4,
		DIMMsPerChan:  2,
		DataDevices:   16,
		CheckDevices:  2,
		Banks:         8,
		Rows:          1 << 16,
		Columns:       1 << 11,
		LineBytes:     CachelineBytes,
		ColumnsPerBlk: ColumnsPerBlock,
	}
}

// PerfNode returns the 2-channel configuration used by the performance
// simulator (Table 3: 2 channels, 2 ranks/channel, 8 banks/rank).
func PerfNode() Geometry {
	g := Default8GiBNode()
	g.Channels = 2
	return g
}

// Validate checks that every dimension is a positive power of two (except
// CheckDevices, which only needs to be non-negative) and that derived
// quantities are consistent.
func (g Geometry) Validate() error {
	pow2 := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("dram: %s must be a positive power of two, got %d", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"DIMMsPerChan", g.DIMMsPerChan},
		{"DataDevices", g.DataDevices},
		{"Banks", g.Banks},
		{"Rows", g.Rows},
		{"Columns", g.Columns},
		{"LineBytes", g.LineBytes},
		{"ColumnsPerBlk", g.ColumnsPerBlk},
	} {
		if err := pow2(f.name, f.v); err != nil {
			return err
		}
	}
	if g.CheckDevices < 0 {
		return fmt.Errorf("dram: CheckDevices must be >= 0, got %d", g.CheckDevices)
	}
	if g.Columns%g.ColumnsPerBlk != 0 {
		return fmt.Errorf("dram: Columns (%d) not divisible by ColumnsPerBlk (%d)", g.Columns, g.ColumnsPerBlk)
	}
	wantLine := g.DataDevices * g.ColumnsPerBlk * BitsPerColumn / 8
	if wantLine != g.LineBytes {
		return fmt.Errorf("dram: LineBytes %d inconsistent with %d data devices x %d columns (%d)",
			g.LineBytes, g.DataDevices, g.ColumnsPerBlk, wantLine)
	}
	return nil
}

// DIMMs returns the number of DIMMs (ranks) per node.
func (g Geometry) DIMMs() int { return g.Channels * g.DIMMsPerChan }

// DevicesPerDIMM returns the total devices per DIMM including check devices.
func (g Geometry) DevicesPerDIMM() int { return g.DataDevices + g.CheckDevices }

// DevicesPerNode returns the total device count in the node.
func (g Geometry) DevicesPerNode() int { return g.DIMMs() * g.DevicesPerDIMM() }

// ColBlocks returns the number of cacheline-granularity column blocks per
// row (Columns / ColumnsPerBlk).
func (g Geometry) ColBlocks() int { return g.Columns / g.ColumnsPerBlk }

// LinesPerBank returns the number of cachelines stored per (rank, bank):
// one line per (row, column block).
func (g Geometry) LinesPerBank() int { return g.Rows * g.ColBlocks() }

// NodeDataBytes returns the usable (non-ECC) capacity of the node in bytes.
func (g Geometry) NodeDataBytes() uint64 {
	return uint64(g.DIMMs()) * g.DIMMDataBytes()
}

// DIMMDataBytes returns the usable capacity of a single DIMM in bytes.
func (g Geometry) DIMMDataBytes() uint64 {
	bitsPerDevice := uint64(g.Banks) * uint64(g.Rows) * uint64(g.Columns) * BitsPerColumn
	return uint64(g.DataDevices) * bitsPerDevice / 8
}

// DeviceBitsPerBank returns the number of data bits one device stores in one
// bank.
func (g Geometry) DeviceBitsPerBank() uint64 {
	return uint64(g.Rows) * uint64(g.Columns) * BitsPerColumn
}

// NumLineAddresses returns how many cacheline addresses the node decodes.
func (g Geometry) NumLineAddresses() uint64 {
	return g.NodeDataBytes() / uint64(g.LineBytes)
}

// Bits reports the widths of each coordinate field.
func (g Geometry) Bits() FieldBits {
	return FieldBits{
		Channel:  log2(g.Channels),
		Rank:     log2(g.DIMMsPerChan),
		Bank:     log2(g.Banks),
		Row:      log2(g.Rows),
		ColBlock: log2(g.ColBlocks()),
	}
}

// FieldBits holds the bit width of each DRAM coordinate field.
type FieldBits struct {
	Channel  uint
	Rank     uint
	Bank     uint
	Row      uint
	ColBlock uint
}

// LineAddrBits returns the total number of cacheline-address bits.
func (fb FieldBits) LineAddrBits() uint {
	return fb.Channel + fb.Rank + fb.Bank + fb.Row + fb.ColBlock
}

func log2(v int) uint {
	var n uint
	for 1<<n < v {
		n++
	}
	return n
}

// Location identifies one cacheline-granularity DRAM location: the set of
// cells across all devices of a rank that a single 64B access touches.
type Location struct {
	Channel  int
	Rank     int // DIMM within the channel
	Bank     int
	Row      int
	ColBlock int // column / ColumnsPerBlk
}

// Valid reports whether l is within the geometry's bounds.
func (l Location) Valid(g Geometry) bool {
	return l.Channel >= 0 && l.Channel < g.Channels &&
		l.Rank >= 0 && l.Rank < g.DIMMsPerChan &&
		l.Bank >= 0 && l.Bank < g.Banks &&
		l.Row >= 0 && l.Row < g.Rows &&
		l.ColBlock >= 0 && l.ColBlock < g.ColBlocks()
}

// DIMMIndex returns the node-global DIMM index of the location.
func (l Location) DIMMIndex(g Geometry) int {
	return l.Channel*g.DIMMsPerChan + l.Rank
}

// String formats the location for diagnostics.
func (l Location) String() string {
	return fmt.Sprintf("ch%d/rk%d/bk%d/row%d/cb%d", l.Channel, l.Rank, l.Bank, l.Row, l.ColBlock)
}

// DeviceCoord identifies a single device in the node.
type DeviceCoord struct {
	Channel int
	Rank    int
	Device  int // 0..DevicesPerDIMM-1; indices >= DataDevices are check devices
}

// DIMMIndex returns the node-global DIMM index of the device.
func (d DeviceCoord) DIMMIndex(g Geometry) int {
	return d.Channel*g.DIMMsPerChan + d.Rank
}

// IsCheck reports whether the device stores ECC check symbols.
func (d DeviceCoord) IsCheck(g Geometry) bool { return d.Device >= g.DataDevices }

// String formats the device coordinate.
func (d DeviceCoord) String() string {
	return fmt.Sprintf("ch%d/rk%d/dev%d", d.Channel, d.Rank, d.Device)
}

// SubarrayOfRow returns the subarray (tile) index containing the given row.
func SubarrayOfRow(row int) int { return row / SubarrayRows }
