// Package trace generates the synthetic memory-access streams that stand in
// for the paper's workloads (Table 4). The real evaluation ran NPB, LULESH,
// and SPEC CPU2006 binaries under a cycle-level simulator; what those
// workloads contribute to the RelaxFault experiments is purely their memory
// behaviour — intensity, working-set size, locality pattern, and write
// fraction — so each generator is parameterised to match the qualitative
// class of its benchmark. Streams are deterministic given the seed.
package trace

import (
	"math"

	"relaxfault/internal/stats"
)

// Op is one trace record: a burst of non-memory instructions followed by
// one memory access.
type Op struct {
	// NonMem is the number of non-memory instructions preceding the
	// access (models compute intensity).
	NonMem int32
	// Addr is the physical byte address accessed.
	Addr uint64
	// Write marks stores.
	Write bool
	// Critical marks loads whose value gates further progress (pointer
	// chasing, index loads); the core model blocks on them instead of
	// hiding their latency with memory-level parallelism.
	Critical bool
}

// Generator produces an infinite deterministic stream of operations.
type Generator interface {
	// Name identifies the workload/thread.
	Name() string
	// Next returns the next operation.
	Next() Op
	// Reset rewinds the stream to the beginning.
	Reset()
}

// Pattern selects the address-generation behaviour of a synthetic thread.
type Pattern int

const (
	// PatternStream walks arrays sequentially (libquantum, lbm, SP-like).
	PatternStream Pattern = iota
	// PatternStride walks with a fixed large stride (column accesses,
	// milc-like).
	PatternStride
	// PatternRandom touches the working set uniformly (DC, hash tables).
	PatternRandom
	// PatternPointer chases dependent pointers through the working set
	// (mcf, omnetpp, UA-like); every load is critical.
	PatternPointer
	// PatternStencil sweeps a grid touching neighbouring planes (LU, SP,
	// LULESH-like); high spatial reuse with a working set of several
	// planes.
	PatternStencil
	// PatternBlocked works repeatedly over cache-sized tiles (blocked
	// linear algebra; CG inner loops).
	PatternBlocked
)

// ThreadParams describes one synthetic thread.
type ThreadParams struct {
	Name string
	// MemRatio is the fraction of instructions that access memory
	// (0.01 .. 0.5); NonMem bursts are drawn to match it.
	MemRatio float64
	// WorkingSet is the bytes the thread cycles over.
	WorkingSet uint64
	// Base is the first byte of the thread's address range.
	Base uint64
	// Pattern selects address behaviour.
	Pattern Pattern
	// StrideBytes is used by PatternStride.
	StrideBytes uint64
	// WriteFrac is the store fraction of memory ops.
	WriteFrac float64
	// CriticalFrac is the fraction of loads the core must block on
	// (PatternPointer forces 1.0).
	CriticalFrac float64
	// HotFrac, when positive, directs HotProb of accesses to the first
	// HotFrac of the working set (models reuse skew).
	HotFrac float64
	HotProb float64
	Seed    uint64
}

// Thread is the standard Generator implementation.
type Thread struct {
	p       ThreadParams
	rng     *stats.RNG
	cursor  uint64 // stream/stride position
	ptr     uint64 // pointer-chase position
	tile    uint64 // blocked pattern tile base
	tilePos uint64
	plane   uint64 // stencil plane cursor
}

// NewThread builds a generator from parameters. Working sets smaller than
// one cacheline are rounded up.
func NewThread(p ThreadParams) *Thread {
	if p.WorkingSet < 64 {
		p.WorkingSet = 64
	}
	if p.MemRatio <= 0 {
		p.MemRatio = 0.1
	}
	if p.Pattern == PatternPointer {
		p.CriticalFrac = 1.0
	}
	t := &Thread{p: p}
	t.Reset()
	return t
}

// Name implements Generator.
func (t *Thread) Name() string { return t.p.Name }

// Reset implements Generator.
func (t *Thread) Reset() {
	t.rng = stats.NewRNG(t.p.Seed ^ 0xABCD1234)
	// Start every walk at a seed-dependent phase: SPMD threads sharing a
	// template must not march through the banks in lockstep (real threads
	// are offset by their domain decomposition).
	t.cursor = t.rng.Uint64() >> 16
	t.ptr = t.rng.Uint64()
	t.tile = 0
	t.tilePos = ^uint64(0) // force a fresh random tile on the first access
	t.plane = t.rng.Uint64() >> 48
}

// lines returns the working set size in cachelines.
func (t *Thread) lines() uint64 { return t.p.WorkingSet / 64 }

// Next implements Generator.
func (t *Thread) Next() Op {
	p := t.p
	// Draw the compute burst: with every instruction independently a
	// memory access with probability MemRatio, the run of non-memory
	// instructions before one is geometric with mean (1-r)/r. Sample it
	// exactly by inversion so the measured memory ratio matches the
	// parameter.
	burst := int32(0)
	if r := p.MemRatio; r < 1 {
		u := t.rng.Float64()
		g := math.Log(1-u) / math.Log(1-r)
		if g > 10000 {
			g = 10000
		}
		burst = int32(g)
	}

	// Sequential patterns step at 8-byte element granularity so they keep
	// the within-line spatial locality real code has (7 of 8 element
	// accesses hit the L1 line brought in by the first); irregular
	// patterns jump between lines.
	const elem = 8
	const elemsPerLine = 64 / elem
	var addr uint64
	critical := false
	n := t.lines()
	nElems := n * elemsPerLine
	switch p.Pattern {
	case PatternStream:
		addr = p.Base + (t.cursor%nElems)*elem
		t.cursor++
	case PatternStride:
		stride := p.StrideBytes / 64
		if stride == 0 {
			stride = 16
		}
		addr = p.Base + (t.cursor%n)*64
		t.cursor += stride
	case PatternRandom:
		addr = p.Base + t.hotAdjust(t.randomLine(n), n)*64
	case PatternPointer:
		// Dependent chain: the next address is a hash of the current one,
		// so the miss latency is exposed on every hop.
		t.ptr = (t.ptr*6364136223846793005 + 1442695040888963407)
		addr = p.Base + t.hotAdjust(t.ptr%n, n)*64
		critical = true
	case PatternStencil:
		// Sweep a plane element by element; every third access touches
		// the matching point of the next plane (cross-plane reuse).
		const planeElems = 4096 * elemsPerLine // 256KiB plane
		planes := nElems / planeElems
		if planes == 0 {
			planes = 1
		}
		pos := t.cursor % planeElems
		var e uint64
		if t.cursor%3 == 2 {
			e = ((t.plane+1)%planes)*planeElems + pos
		} else {
			e = (t.plane%planes)*planeElems + pos
		}
		addr = p.Base + (e%nElems)*elem
		t.cursor++
		if t.cursor%planeElems == 0 {
			t.plane++
		}
	case PatternBlocked:
		const tileElems = 1024 * elemsPerLine // 64KiB tile, revisited 8x
		if t.tilePos >= tileElems*8 {
			t.tilePos = 0
			t.tile = t.randomLine(n)
		}
		e := t.tile*elemsPerLine + t.tilePos%tileElems
		addr = p.Base + (e%nElems)*elem
		t.tilePos++
	}
	write := t.rng.Bool(p.WriteFrac)
	if !write && !critical {
		critical = t.rng.Bool(p.CriticalFrac)
	}
	return Op{NonMem: burst, Addr: addr, Write: write, Critical: critical && !write}
}

// hotAdjust redirects a fraction of irregular accesses into the hot head of
// the working set. Accesses within the hot region are quadratically skewed
// toward its start, so the hit rate responds smoothly to cache capacity the
// way real reuse distributions do, instead of falling off an LRU cliff.
func (t *Thread) hotAdjust(lineIdx, n uint64) uint64 {
	p := t.p
	if p.HotFrac > 0 && p.HotProb > 0 && t.rng.Bool(p.HotProb) {
		hot := uint64(float64(n) * p.HotFrac)
		if hot == 0 {
			hot = 1
		}
		u := t.rng.Float64()
		return uint64(u * u * float64(hot))
	}
	return lineIdx % n
}

// randomLine picks a uniform line index.
func (t *Thread) randomLine(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return t.rng.Uint64n(n)
}
