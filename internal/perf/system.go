package perf

import (
	"fmt"
	"time"

	"relaxfault/internal/runtrace"
	"relaxfault/internal/trace"
)

// SystemConfig describes one simulation run.
type SystemConfig struct {
	Mem  MemConfig
	Core CoreConfig
	// TargetInstructions is the per-core retirement budget; statistics
	// freeze per core once it is reached, but all cores keep running so
	// shared-resource contention stays realistic.
	TargetInstructions uint64
	// LockWays removes this many ways from every LLC set (repair
	// pessimism experiment); LockBytes instead locks individual lines
	// totalling the given capacity at most one way deep per set (the
	// 100KiB RelaxFault experiment). At most one should be non-zero.
	LockWays  int
	LockBytes int64
	Seed      uint64
	// MaxCycles aborts runaway simulations (0 = no limit).
	MaxCycles int64
	// Trace, if non-nil, records one "perf.run" span per Run on TraceTrack
	// (a worker id, or a runtrace synthetic track). Execution-environment
	// attachment: never part of any configuration fingerprint, never
	// affects results.
	Trace      *runtrace.Recorder
	TraceTrack int
}

// DefaultSystemConfig mirrors Table 3 with a 2M-instruction budget.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Mem:                DefaultMemConfig(),
		Core:               DefaultCoreConfig(),
		TargetInstructions: 2_000_000,
		Seed:               1,
	}
}

// Validate reports the first configuration error, if any. Run applies it on
// entry; the scenario layer calls it directly so a bad performance spec
// fails before any simulation work starts.
func (cfg SystemConfig) Validate() error {
	if err := cfg.Mem.Validate(); err != nil {
		return err
	}
	if err := cfg.Core.Validate(); err != nil {
		return err
	}
	if cfg.TargetInstructions == 0 {
		return fmt.Errorf("perf: zero instruction target")
	}
	if cfg.LockWays < 0 || cfg.LockBytes < 0 {
		return fmt.Errorf("perf: negative repair lock (%d ways, %d bytes)", cfg.LockWays, cfg.LockBytes)
	}
	if cfg.LockWays > 0 && cfg.LockBytes > 0 {
		return fmt.Errorf("perf: LockWays and LockBytes are mutually exclusive")
	}
	if cfg.LockWays > cfg.Mem.LLCWays {
		return fmt.Errorf("perf: cannot lock %d of %d LLC ways", cfg.LockWays, cfg.Mem.LLCWays)
	}
	if max := int64(cfg.Mem.LLCSets) * 64; cfg.LockBytes > max {
		return fmt.Errorf("perf: LockBytes %d exceeds one way of the LLC (%dB)", cfg.LockBytes, max)
	}
	if cfg.MaxCycles < 0 {
		return fmt.Errorf("perf: negative MaxCycles")
	}
	return nil
}

// CoreResult is one core's outcome.
type CoreResult struct {
	Name         string
	Instructions uint64
	Cycles       int64
	IPC          float64
	L1Hits       uint64
	L2Hits       uint64
	LLCHits      uint64
	MemAccesses  uint64
}

// Result is a full-system outcome.
type Result struct {
	Cores        []CoreResult
	Cycles       int64
	Ops          OpCounts
	LLCHits      uint64
	LLCMisses    uint64
	LLCEvictions uint64
	Prefetches   uint64
	RowHits      uint64
	RowMisses    uint64
	// Seconds is wall time at the 4GHz clock.
	Seconds float64
}

// TotalIPC sums per-core IPCs.
func (r *Result) TotalIPC() float64 {
	var s float64
	for _, c := range r.Cores {
		s += c.IPC
	}
	return s
}

// Run simulates the given threads (one per core) to completion.
func Run(cfg SystemConfig, threads []trace.ThreadParams) (*Result, error) {
	t0 := time.Now()
	traceStart := cfg.Trace.Now()
	if len(threads) == 0 {
		return nil, fmt.Errorf("perf: no threads")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ms, err := NewMemSystem(cfg.Mem)
	if err != nil {
		return nil, err
	}
	if cfg.LockWays > 0 {
		ms.LockWays(cfg.LockWays)
	}
	if cfg.LockBytes > 0 {
		ms.LockRandomLines(cfg.LockBytes, cfg.Seed)
	}
	cores := make([]*Core, len(threads))
	for i, tp := range threads {
		tp.Seed ^= cfg.Seed * 0x9E3779B9
		gen := trace.NewThread(tp)
		c, err := NewCore(i, cfg.Core, gen)
		if err != nil {
			return nil, err
		}
		c.Target = cfg.TargetInstructions
		cores[i] = c
	}

	var cycle int64
	for {
		cycle++
		if cfg.MaxCycles > 0 && cycle > cfg.MaxCycles {
			break
		}
		ms.Tick(cycle)
		allDone := true
		for _, c := range cores {
			c.Tick(cycle, ms)
			if !c.Done() {
				allDone = false
			}
		}
		if allDone {
			break
		}
		// Fast-forward through globally idle stretches.
		if !ms.Busy() {
			next := int64(-1)
			for _, c := range cores {
				w := c.NextWake()
				if w < 0 {
					next = -1
					break
				}
				if next < 0 || w < next {
					next = w
				}
			}
			if next > cycle+1 {
				// Align to the next cycle before the wake so channel ticks
				// stay on their grid.
				cycle = next - 1
			}
		}
	}

	res := &Result{
		Cycles:       cycle,
		Ops:          ms.TotalOps(),
		LLCHits:      ms.LLCHits,
		LLCMisses:    ms.LLCMisses,
		LLCEvictions: ms.LLCEvictions,
		Prefetches:   ms.Prefetches,
		Seconds:      float64(cycle) / 4e9,
	}
	for _, ch := range ms.Channels() {
		res.RowHits += ch.RowHits
		res.RowMisses += ch.RowMisses
	}
	for _, c := range cores {
		done := c.DoneCycle
		if done == 0 {
			done = cycle
		}
		res.Cores = append(res.Cores, CoreResult{
			Name:         threads[c.ID].Name,
			Instructions: cfg.TargetInstructions,
			Cycles:       done,
			IPC:          float64(cfg.TargetInstructions) / float64(done),
			L1Hits:       c.L1Hits,
			L2Hits:       c.L2Hits,
			LLCHits:      c.LLCLevel,
			MemAccesses:  c.MemLevel,
		})
	}
	publishRun(res, cores, ms.Channels())
	pm.runSeconds.Since(t0)
	cfg.Trace.Record(cfg.TraceTrack, "perf.run", -1, 0, traceStart, cfg.Trace.Now())
	return res, nil
}

// WeightedSpeedup evaluates Equation (2) for a workload under a
// repair-capacity configuration: each thread's shared-mode IPC is divided
// by its IPC when run alone on the full-capacity system.
//
// aloneIPC may be supplied (from a previous call) to avoid recomputing the
// baselines; pass nil to compute them here.
func WeightedSpeedup(cfg SystemConfig, threads []trace.ThreadParams, aloneIPC []float64) (ws float64, alone []float64, shared *Result, err error) {
	if aloneIPC == nil {
		aloneIPC = make([]float64, len(threads))
		for i := range threads {
			soloCfg := cfg
			soloCfg.LockWays = 0
			soloCfg.LockBytes = 0
			res, err := Run(soloCfg, []trace.ThreadParams{threads[i]})
			if err != nil {
				return 0, nil, nil, err
			}
			aloneIPC[i] = res.Cores[0].IPC
		}
	}
	shared, err = Run(cfg, threads)
	if err != nil {
		return 0, nil, nil, err
	}
	for i, c := range shared.Cores {
		if aloneIPC[i] > 0 {
			ws += c.IPC / aloneIPC[i]
		}
	}
	return ws, aloneIPC, shared, nil
}
