package repair

import (
	"testing"

	"relaxfault/internal/addrmap"
	"relaxfault/internal/dram"
	"relaxfault/internal/fault"
	"relaxfault/internal/stats"
)

func mapper(t *testing.T) *addrmap.Mapper {
	t.Helper()
	m, err := addrmap.New(dram.Default8GiBNode(), 8192)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func dev(ch, rk, d int) dram.DeviceCoord {
	return dram.DeviceCoord{Channel: ch, Rank: rk, Device: d}
}

func bitFault(d dram.DeviceCoord, bank, row, col int) *fault.Fault {
	return &fault.Fault{Dev: d, Mode: fault.SingleBit, Extents: []fault.Extent{{
		BankLo: bank, BankHi: bank, Rows: fault.OneRow(row), ColLo: col, ColHi: col,
	}}}
}

func rowFault(d dram.DeviceCoord, bank, row int) *fault.Fault {
	g := dram.Default8GiBNode()
	return &fault.Fault{Dev: d, Mode: fault.SingleRow, Extents: []fault.Extent{{
		BankLo: bank, BankHi: bank, Rows: fault.OneRow(row), ColLo: 0, ColHi: g.Columns - 1,
	}}}
}

func colFault(d dram.DeviceCoord, bank, col int) *fault.Fault {
	return &fault.Fault{Dev: d, Mode: fault.SingleColumn, Extents: []fault.Extent{{
		BankLo: bank, BankHi: bank,
		Rows:  fault.RowRange(512, 512+dram.SubarrayRows-1),
		ColLo: col, ColHi: col,
	}}}
}

func wholeBankFault(d dram.DeviceCoord, bank int) *fault.Fault {
	g := dram.Default8GiBNode()
	return &fault.Fault{Dev: d, Mode: fault.SingleBank, Extents: []fault.Extent{{
		BankLo: bank, BankHi: bank, Rows: fault.AllRows(), ColLo: 0, ColHi: g.Columns - 1,
	}}}
}

func TestRelaxFaultLineBudgets(t *testing.T) {
	m := mapper(t)
	rf := NewRelaxFault(m, 16)

	plan := rf.PlanNode([]*fault.Fault{bitFault(dev(0, 0, 3), 1, 100, 5)})
	if !plan.AllMappable || plan.TotalLines != 1 || plan.MaxWaysPerSet != 1 {
		t.Errorf("bit fault plan: %+v", plan)
	}

	plan = rf.PlanNode([]*fault.Fault{rowFault(dev(0, 0, 3), 1, 100)})
	if plan.TotalLines != 16 {
		t.Errorf("row fault uses %d RF lines, want 16", plan.TotalLines)
	}
	if plan.MaxWaysPerSet != 1 {
		t.Errorf("row fault presses %d ways, want 1", plan.MaxWaysPerSet)
	}
	if plan.Bytes != 16*64 {
		t.Errorf("row fault bytes %d", plan.Bytes)
	}

	plan = rf.PlanNode([]*fault.Fault{colFault(dev(1, 1, 7), 2, 99)})
	if plan.TotalLines != int64(dram.SubarrayRows) {
		t.Errorf("column fault uses %d lines, want %d", plan.TotalLines, dram.SubarrayRows)
	}
	if plan.MaxWaysPerSet > 2 {
		t.Errorf("column fault presses %d ways", plan.MaxWaysPerSet)
	}
}

func TestFreeFaultNeeds16xMoreLinesForRows(t *testing.T) {
	m := mapper(t)
	ff := NewFreeFault(m, 16, true)
	plan := ff.PlanNode([]*fault.Fault{rowFault(dev(0, 0, 3), 1, 100)})
	if plan.TotalLines != 256 {
		t.Errorf("FreeFault row fault uses %d lines, want 256", plan.TotalLines)
	}
	if plan.MaxWaysPerSet != 1 {
		t.Errorf("hashed FreeFault row fault presses %d ways, want 1", plan.MaxWaysPerSet)
	}
}

func TestFreeFaultUnhashedColumnCollapse(t *testing.T) {
	m := mapper(t)
	ff := NewFreeFault(m, 16, false)
	plan := ff.PlanNode([]*fault.Fault{colFault(dev(0, 0, 0), 0, 40)})
	// Un-hashed, all 512 rows of a column land in one set: unrepairable
	// even at 16 ways.
	if plan.MaxWaysPerSet != dram.SubarrayRows {
		t.Errorf("un-hashed column fault max ways %d, want %d", plan.MaxWaysPerSet, dram.SubarrayRows)
	}
	if plan.RepairableUnder(16) {
		t.Error("un-hashed FreeFault should not repair a column fault at 16 ways")
	}
	ffh := NewFreeFault(m, 16, true)
	plan = ffh.PlanNode([]*fault.Fault{colFault(dev(0, 0, 0), 0, 40)})
	if !plan.RepairableUnder(1) {
		t.Error("hashed FreeFault should repair a column fault at 1 way")
	}
}

func TestWholeBankUnmappable(t *testing.T) {
	m := mapper(t)
	for _, p := range []Planner{NewRelaxFault(m, 16), NewFreeFault(m, 16, true)} {
		plan := p.PlanNode([]*fault.Fault{wholeBankFault(dev(0, 0, 5), 3)})
		if plan.AllMappable {
			t.Errorf("%s: whole-bank fault mappable", p.Name())
		}
		if plan.RepairableUnder(16) {
			t.Errorf("%s: whole-bank fault repairable", p.Name())
		}
	}
}

func TestDedupAcrossFaults(t *testing.T) {
	m := mapper(t)
	rf := NewRelaxFault(m, 16)
	// Two bit faults in the same device row group share one remap line.
	f1 := bitFault(dev(0, 0, 3), 1, 100, 5)
	f2 := bitFault(dev(0, 0, 3), 1, 100, 6)
	plan := rf.PlanNode([]*fault.Fault{f1, f2})
	if plan.TotalLines != 1 {
		t.Errorf("duplicate lines not coalesced: %d", plan.TotalLines)
	}
	if plan.PerFault[1].Lines != 0 {
		t.Errorf("second fault charged %d new lines", plan.PerFault[1].Lines)
	}
}

func TestGreedyUnderPartialRepair(t *testing.T) {
	m := mapper(t)
	rf := NewRelaxFault(m, 16)
	// The repair mapping deliberately spreads faults, so a same-set
	// conflict between two row faults must be found by search: take the
	// first row on another bank whose remap lines collide with f1's.
	d := dev(0, 0, 2)
	f1 := rowFault(d, 1, 1000)
	f1Sets := map[int32]bool{}
	for _, s := range rf.PlanNode([]*fault.Fault{f1}).PerFault[0].Sets {
		f1Sets[s] = true
	}
	var f2 *fault.Fault
search:
	for r := 0; r < m.Geometry().Rows; r++ {
		cand := rowFault(d, 2, r)
		for _, s := range rf.PlanNode([]*fault.Fault{cand}).PerFault[0].Sets {
			if f1Sets[s] {
				f2 = cand
				break search
			}
		}
	}
	if f2 == nil {
		t.Fatal("no colliding row found (mapping too perfect to be real)")
	}
	f3 := rowFault(d, 3, 9)
	plan := rf.PlanNode([]*fault.Fault{f1, f2, f3})
	if plan.RepairableUnder(1) {
		t.Fatal("conflicting rows should exceed 1 way")
	}
	if !plan.RepairableUnder(2) {
		t.Fatal("two ways should suffice")
	}
	repaired, lines := plan.GreedyUnder(1)
	if !repaired[0] {
		t.Error("first fault should always be repaired")
	}
	if repaired[1] {
		t.Error("colliding second fault should be skipped at 1 way")
	}
	want := int64(16)
	if repaired[2] {
		want += 16
	}
	if lines != want {
		t.Errorf("greedy lines %d, want %d", lines, want)
	}
}

func TestMirrorRanksDoublesLines(t *testing.T) {
	m := mapper(t)
	rf := NewRelaxFault(m, 16)
	f := rowFault(dev(2, 0, 1), 4, 77)
	f.MirrorRanks = true
	plan := rf.PlanNode([]*fault.Fault{f})
	if plan.TotalLines != 32 {
		t.Errorf("mirrored row fault uses %d lines, want 32", plan.TotalLines)
	}
}

func TestPPRSemantics(t *testing.T) {
	g := dram.Default8GiBNode()
	ppr := NewPPR(g)
	d := dev(0, 0, 4)

	// Bit and row faults are repairable.
	plan := ppr.PlanNode([]*fault.Fault{bitFault(d, 0, 5, 5), rowFault(d, 7, 9)})
	if !plan.AllMappable {
		t.Error("PPR should repair bit and row faults")
	}
	if !plan.RepairableUnder(1) {
		t.Error("PPR repairability must ignore way limits")
	}
	// Column faults span too many rows.
	plan = ppr.PlanNode([]*fault.Fault{colFault(d, 0, 5)})
	if plan.AllMappable {
		t.Error("PPR should not repair a column fault")
	}
	// Spare exhaustion: two row faults in the same bank group (banks 0 and
	// 1 share a group with 8 banks / 4 groups).
	plan = ppr.PlanNode([]*fault.Fault{rowFault(d, 0, 1), rowFault(d, 1, 2)})
	if plan.AllMappable {
		t.Error("PPR should exhaust the bank group's single spare")
	}
	if !plan.PerFault[0].Mappable || plan.PerFault[1].Mappable {
		t.Error("PPR should repair first-come fault only")
	}
	// Different groups have their own spares.
	plan = ppr.PlanNode([]*fault.Fault{rowFault(d, 0, 1), rowFault(d, 2, 2)})
	if !plan.AllMappable {
		t.Error("PPR should repair rows in distinct bank groups")
	}
	// Different devices have their own spares too.
	plan = ppr.PlanNode([]*fault.Fault{rowFault(d, 0, 1), rowFault(dev(0, 0, 5), 0, 2)})
	if !plan.AllMappable {
		t.Error("PPR spares are per device")
	}
	// Two-row fault needs two spares in one group: unrepairable.
	two := &fault.Fault{Dev: d, Mode: fault.SingleRow, Extents: []fault.Extent{{
		BankLo: 4, BankHi: 4, Rows: fault.RowRange(10, 11), ColLo: 0, ColHi: g.Columns - 1,
	}}}
	plan = ppr.PlanNode([]*fault.Fault{two})
	if plan.AllMappable {
		t.Error("two-row fault should exceed one spare")
	}
}

// TestIncrementalMatchesBatchGreedy: TryRepair in arrival order must agree
// with PlanNode + GreedyUnder on random fault sets — the equivalence the
// reliability simulator relies on.
func TestIncrementalMatchesBatchGreedy(t *testing.T) {
	m := mapper(t)
	g := m.Geometry()
	model, err := fault.NewModel(fault.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(21)
	planners := []Incremental{
		NewRelaxFault(m, 16).(Incremental),
		NewFreeFault(m, 16, true).(Incremental),
		NewPPR(g).(Incremental),
	}
	tested := 0
	for tested < 60 {
		nf := model.SampleNode(rng)
		perm := nf.PermanentFaults()
		if len(perm) == 0 {
			continue
		}
		tested++
		for _, p := range planners {
			for _, way := range []int{1, 4, 16} {
				plan := p.PlanNode(perm)
				batch, _ := plan.GreedyUnder(way)
				st := p.NewState()
				for i, f := range perm {
					inc := p.TryRepair(st, f, way)
					if inc != batch[i] {
						t.Fatalf("%s way %d fault %d (%v): incremental %v, batch %v",
							p.Name(), way, i, f.Mode, inc, batch[i])
					}
				}
			}
		}
	}
}

// TestPlanDeterminism: planning is a pure function.
func TestPlanDeterminism(t *testing.T) {
	m := mapper(t)
	rf := NewRelaxFault(m, 16)
	fs := []*fault.Fault{rowFault(dev(1, 0, 9), 3, 42), colFault(dev(1, 0, 9), 3, 7)}
	a := rf.PlanNode(fs)
	b := rf.PlanNode(fs)
	if a.TotalLines != b.TotalLines || a.MaxWaysPerSet != b.MaxWaysPerSet || a.Bytes != b.Bytes {
		t.Error("plans differ across runs")
	}
}

// TestCapacityOrderingRFvsFF: for every repairable fault shape, RelaxFault
// must never need more lines than FreeFault (it coalesces 16 column blocks
// per line).
func TestCapacityOrderingRFvsFF(t *testing.T) {
	m := mapper(t)
	rf := NewRelaxFault(m, 16)
	ff := NewFreeFault(m, 16, true)
	model, _ := fault.NewModel(fault.DefaultConfig())
	rng := stats.NewRNG(22)
	tested := 0
	for tested < 100 {
		nf := model.SampleNode(rng)
		perm := nf.PermanentFaults()
		if len(perm) == 0 {
			continue
		}
		tested++
		prf := rf.PlanNode(perm)
		pff := ff.PlanNode(perm)
		if prf.AllMappable && pff.AllMappable && prf.TotalLines > pff.TotalLines {
			t.Fatalf("RelaxFault used more lines (%d) than FreeFault (%d)", prf.TotalLines, pff.TotalLines)
		}
	}
}

func TestGreedyZeroWayLimit(t *testing.T) {
	m := mapper(t)
	rf := NewRelaxFault(m, 16)
	plan := rf.PlanNode([]*fault.Fault{bitFault(dev(0, 0, 0), 0, 0, 0)})
	repaired, lines := plan.GreedyUnder(0)
	if repaired[0] || lines != 0 {
		t.Error("zero way limit repaired something")
	}
}

func TestPlannerNames(t *testing.T) {
	m := mapper(t)
	g := m.Geometry()
	if NewRelaxFault(m, 16).Name() != "RelaxFault" {
		t.Error("RelaxFault name")
	}
	if NewFreeFault(m, 16, true).Name() != "FreeFault+hash" {
		t.Error("FreeFault hashed name")
	}
	if NewFreeFault(m, 16, false).Name() != "FreeFault" {
		t.Error("FreeFault name")
	}
	if NewPPR(g).Name() != "PPR" {
		t.Error("PPR name")
	}
}
