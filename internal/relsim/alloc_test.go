package relsim

import (
	"testing"

	"relaxfault/internal/addrmap"
	"relaxfault/internal/dram"
	"relaxfault/internal/fault"
	"relaxfault/internal/repair"
	"relaxfault/internal/stats"
)

// allocWarmNodes is the warm-up window of the steady-state allocation tests:
// the trial kernels grow their pooled scratch (fault arena, row buffers,
// plan buffers, curve scratch) to the high-water mark of these nodes, and
// the measurement then replays the same nodes, where every buffer is already
// large enough. Steady state is therefore exactly reproducible: zero allocs.
const allocWarmNodes = 2048

// TestCoverageTrialAllocs pins the batched coverage kernel's steady-state
// allocation count at zero: sampling, permanent-fault filtering, planning
// (all three reusable engines), and outcome accumulation reuse pooled
// buffers once warmed. A regression here silently multiplies by the millions
// of trials a campaign runs.
func TestCoverageTrialAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; steady-state counts only hold without it")
	}
	m, err := addrmap.New(dram.Default8GiBNode(), 8192)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCoverageConfig()
	// 10x FIT: most trials are faulty, so the planners — not just the
	// sampler — are on the measured path.
	cfg.Model.Rates = cfg.Model.Rates.Scale(10)
	cfg.Planners = []repair.Planner{
		repair.NewPPR(m.Geometry()),
		repair.NewFreeFault(m, 16, true),
		repair.NewRelaxFault(m, 16),
	}
	model, err := fault.NewModel(cfg.Model)
	if err != nil {
		t.Fatal(err)
	}
	nCurves := len(cfg.Planners) * len(cfg.WayLimits)
	fk := stats.NewRNG(cfg.Seed).Forker()
	sc := &covScratch{}
	acc := &covChunk{Curves: make([]covCurveChunk, nCurves)}
	for i := 0; i < allocWarmNodes; i++ {
		cfg.coverageTrial(model, fk, i, acc, sc)
	}
	node := 0
	allocs := testing.AllocsPerRun(allocWarmNodes, func() {
		// Reset the accumulator in place so its growth is not charged to
		// the kernel (the real engine flushes it every batch).
		acc.Faulty, acc.Skipped = 0, 0
		for c := range acc.Curves {
			acc.Curves[c].Repairable = 0
			acc.Curves[c].Caps = acc.Curves[c].Caps[:0]
		}
		cfg.coverageTrial(model, fk, node, acc, sc)
		node = (node + 1) % allocWarmNodes
	})
	if allocs != 0 {
		t.Fatalf("coverage trial steady state allocates %.2f objects/trial, want 0", allocs)
	}
}

// TestRunTrialAllocs pins the reliability-run trial kernel's steady-state
// allocation count at zero: substream derivation, sampling, incremental
// repair, and error analysis all run out of per-worker scratch.
func TestRunTrialAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; steady-state counts only hold without it")
	}
	m, err := addrmap.New(dram.Default8GiBNode(), 8192)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Model.Rates = cfg.Model.Rates.Scale(10)
	cfg.Planner = repair.NewRelaxFault(m, 16)
	cfg.WayLimit = 1
	model, err := fault.NewModel(cfg.Model)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := newNodeSim(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fk := stats.NewRNG(cfg.Seed).Forker()
	var res runPayload
	for i := 0; i < allocWarmNodes; i++ {
		runTrial(sim, fk, i, &res, &cfg)
	}
	node := 0
	allocs := testing.AllocsPerRun(allocWarmNodes, func() {
		res = runPayload{}
		runTrial(sim, fk, node, &res, &cfg)
		node = (node + 1) % allocWarmNodes
	})
	if allocs != 0 {
		t.Fatalf("run trial steady state allocates %.2f objects/trial, want 0", allocs)
	}
}
