// Package ecc implements the chipkill-level ECC the evaluated memory system
// uses: a Reed-Solomon [18,16] code over GF(2^8) with one 8-bit symbol per
// x4 device per pair of burst beats. The code corrects any single-symbol
// (single-device) error and flags multi-symbol errors as detected
// uncorrectable errors (DUEs); like any distance-3 code it has a small,
// quantifiable miscorrection probability for multi-symbol errors, which is
// exactly the silent-data-corruption (SDC) channel the paper's reliability
// model charges.
package ecc

// Poly is the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D) generating
// GF(2^8); the same field AES-adjacent RS codes use.
const Poly = 0x11D

// gfExp[i] = alpha^i for i in [0, 510); gfLog[alpha^i] = i.
var (
	gfExp [510]byte
	gfLog [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 510; i++ {
		gfExp[i] = gfExp[i-255]
	}
	gfLog[0] = -1
}

// Add returns a + b in GF(2^8) (XOR).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// Div returns a / b in GF(2^8). It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]-gfLog[b]+255]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("ecc: inverse of zero in GF(2^8)")
	}
	return gfExp[255-gfLog[a]]
}

// Exp returns alpha^i for i >= 0.
func Exp(i int) byte { return gfExp[i%255] }

// Log returns the discrete log of a (the i with alpha^i == a), or -1 for 0.
func Log(a byte) int { return gfLog[a] }
