package fault

import (
	"fmt"
	"math"
	"sort"

	"relaxfault/internal/dram"
	"relaxfault/internal/stats"
)

// ShapeParams controls how fault extents are drawn within a device. The
// defaults are calibrated (see EXPERIMENTS.md) so the resulting repair
// coverage matches the paper's reported numbers; the field studies publish
// mode frequencies but not sub-mode extents, so these are the model's free
// parameters.
type ShapeParams struct {
	// WordFrac is the fraction of bit/word faults affecting a full 8-column
	// word rather than a single column cell.
	WordFrac float64
	// TwoRowFrac is the fraction of single-row faults affecting two
	// adjacent rows ("typically just one" row, per the paper).
	TwoRowFrac float64
	// ColFullSubarrayFrac is the fraction of column faults affecting the
	// bitline through an entire subarray; the rest affect a few rows of
	// one column.
	ColFullSubarrayFrac float64
	// ColFewRowsMax bounds the affected row count of partial column
	// faults (uniform in [2, ColFewRowsMax]).
	ColFewRowsMax int
	// BankWholeFrac is the fraction of single-bank faults that disable the
	// entire bank — the "massive" faults beyond any LLC-based repair.
	BankWholeFrac float64
	// BankRowClusterFrac splits the remaining bank faults between row
	// clusters (this fraction) and column clusters.
	BankRowClusterFrac float64
	// BankClusterMaxRows bounds row-cluster size; cluster sizes are
	// log-uniform in [2, BankClusterMaxRows] at random row positions.
	BankClusterMaxRows int
	// BankColClusterMaxCols bounds column-cluster width.
	BankColClusterMaxCols int
	// BankColClusterMaxSubarrays bounds how many adjacent subarrays a
	// column cluster spans.
	BankColClusterMaxSubarrays int
	// MultiBankWholeFrac is the fraction of multi-bank faults that disable
	// their banks entirely (the rest are row clusters repeated per bank).
	MultiBankWholeFrac float64
	// IntermittentFrac is the fraction of permanent faults that are
	// hard-intermittent rather than hard-permanent.
	IntermittentFrac float64
	// ActivationMinPerHour/ActivationMaxPerHour bound the log-uniform
	// activation rate of intermittent faults (paper: roughly once per
	// month to more than once per hour).
	ActivationMinPerHour float64
	ActivationMaxPerHour float64
}

// DefaultShape returns the calibrated extent distribution.
func DefaultShape() ShapeParams {
	return ShapeParams{
		WordFrac:                   0.25,
		TwoRowFrac:                 0.15,
		ColFullSubarrayFrac:        0.50,
		ColFewRowsMax:              32,
		BankWholeFrac:              0.07,
		BankRowClusterFrac:         0.60,
		BankClusterMaxRows:         512,
		BankColClusterMaxCols:      16,
		BankColClusterMaxSubarrays: 4,
		MultiBankWholeFrac:         0.40,
		IntermittentFrac:           0.45,
		ActivationMinPerHour:       1.0 / 720, // about once a month
		ActivationMaxPerHour:       5.0,       // several times an hour
	}
}

// Config parameterises the refined fault-injection model of Section 4.1.2.
type Config struct {
	Geometry dram.Geometry
	Rates    Rates
	// Hours is the simulated horizon (the paper uses 6 years).
	Hours float64
	// VarianceFrac sets per-device lognormal rate variation: the variance
	// of a device's rate multiplier is VarianceFrac (the paper uses a
	// variance equal to 1/4 of the mean, i.e. multiplier mean 1, variance
	// 0.25 relative to a unit mean).
	VarianceFrac float64
	// AccelFactor is the FIT acceleration applied to unlucky nodes and
	// DIMMs (paper: 100x).
	AccelFactor float64
	// AccelNodeFrac and AccelDIMMFrac are the fractions of accelerated
	// nodes and DIMMs (paper: 0.1% each).
	AccelNodeFrac float64
	AccelDIMMFrac float64
	Shape         ShapeParams
}

// DefaultConfig returns the paper's baseline model: Cielo rates, 6 years,
// 100x acceleration of 0.1% of nodes and DIMMs.
func DefaultConfig() Config {
	return Config{
		Geometry:      dram.Default8GiBNode(),
		Rates:         CieloRates(),
		Hours:         6 * HoursPerYear,
		VarianceFrac:  0.25,
		AccelFactor:   100,
		AccelNodeFrac: 0.001,
		AccelDIMMFrac: 0.001,
		Shape:         DefaultShape(),
	}
}

// Model samples per-node fault histories.
type Model struct {
	cfg Config
	// adjustedMult is the rate multiplier of non-accelerated devices,
	// chosen per Equation (1) so the fleet-average FIT stays constant.
	adjustedMult float64
	// modeCDF is the cumulative probability of each (mode, persistence)
	// pair; index 2*mode for transient, 2*mode+1 for permanent.
	modeCDF   []float64
	totalFIT  float64
	devPerDMM int
}

// NewModel validates the configuration and precomputes sampling tables.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.Hours <= 0 {
		return nil, fmt.Errorf("fault: Hours must be positive")
	}
	if cfg.AccelNodeFrac+cfg.AccelDIMMFrac >= 1 {
		return nil, fmt.Errorf("fault: acceleration fractions must sum below 1")
	}
	m := &Model{cfg: cfg, devPerDMM: cfg.Geometry.DevicesPerDIMM()}
	pn, pd, a := cfg.AccelNodeFrac, cfg.AccelDIMMFrac, cfg.AccelFactor
	if a <= 0 {
		a = 1
	}
	// Equation (1): FIT = PN*A*FIT + PD*A*FIT + (1-PN-PD)*adj*FIT.
	m.adjustedMult = (1 - (pn+pd)*a) / (1 - pn - pd)
	if m.adjustedMult < 0 {
		return nil, fmt.Errorf("fault: acceleration %v of %v+%v of parts exceeds the FIT budget", a, pn, pd)
	}
	m.modeCDF = make([]float64, 2*NumModes)
	var cum float64
	for mode := Mode(0); mode < NumModes; mode++ {
		cum += cfg.Rates.Transient[mode]
		m.modeCDF[2*mode] = cum
		cum += cfg.Rates.Permanent[mode]
		m.modeCDF[2*mode+1] = cum
	}
	m.totalFIT = cum
	if cum <= 0 {
		return nil, fmt.Errorf("fault: all FIT rates are zero")
	}
	return m, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// AdjustedMultiplier returns the rate multiplier applied to devices in
// non-accelerated parts (Equation 1); e.g. about 0.8 for the default 100x /
// 0.1% / 0.1% setting.
func (m *Model) AdjustedMultiplier() float64 { return m.adjustedMult }

// NodeFaults is one node's sampled fault history.
type NodeFaults struct {
	// Faults are sorted by arrival time.
	Faults []*Fault
	// NodeAccelerated marks a node drawn from the unlucky 0.1%.
	NodeAccelerated bool
	// AcceleratedDIMMs lists node-local DIMM indices drawn as unlucky.
	AcceleratedDIMMs []int
}

// PermanentCount returns the number of permanent faults.
func (nf *NodeFaults) PermanentCount() int {
	n := 0
	for _, f := range nf.Faults {
		if f.Permanent() {
			n++
		}
	}
	return n
}

// PermanentFaults returns the permanent faults in arrival order.
func (nf *NodeFaults) PermanentFaults() []*Fault {
	return nf.PermanentFaultsInto(nil)
}

// PermanentFaultsInto appends the permanent faults in arrival order to buf
// and returns it; hot paths pass a reused buffer so filtering allocates
// nothing in steady state.
func (nf *NodeFaults) PermanentFaultsInto(buf []*Fault) []*Fault {
	buf = buf[:0]
	for _, f := range nf.Faults {
		if f.Permanent() {
			buf = append(buf, f)
		}
	}
	return buf
}

// SampleScratch holds the per-call working buffers of SampleNodeScratch.
// One scratch serves one goroutine; the Monte Carlo workers keep one per
// worker so sampling allocates nothing in steady state: the multiplier and
// weight tables, the Fault objects themselves (including their extent and
// row-list backings), and the fault-pointer slices are all arena-pooled and
// reused across calls. A zero SampleScratch is ready to use.
//
// Aliasing contract: the NodeFaults returned by SampleNodeScratch — every
// *Fault, its Extents, and its AcceleratedDIMMs — remains valid only until
// the next SampleNodeScratch call with the same scratch. Callers that keep
// fault histories across trials must copy them (or pass a fresh scratch).
type SampleScratch struct {
	dimmMult []float64
	weights  []float64
	// arena holds the reusable Fault objects; entry i serves the i-th fault
	// of the current node. Objects are allocated once and reused along with
	// their extent backings, so steady-state sampling allocates nothing.
	arena []*Fault
	// rowBufs[i] is arena slot i's reusable row-list storage (kept here, not
	// on the Fault, so a slot alternating between list-shaped and
	// range-shaped modes does not shed its backing).
	rowBufs [][]int
	// ptrs backs NodeFaults.Faults; accel backs NodeFaults.AcceleratedDIMMs.
	ptrs  []*Fault
	accel []int
}

// fault returns the i-th reusable Fault of the arena and its row-list
// buffer, growing the arena on first use of a slot.
func (sc *SampleScratch) fault(i int) (*Fault, *[]int) {
	for i >= len(sc.arena) {
		sc.arena = append(sc.arena, &Fault{})
		sc.rowBufs = append(sc.rowBufs, nil)
	}
	return sc.arena[i], &sc.rowBufs[i]
}

// grow returns buf resized to n, reusing its backing array when possible.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// SampleNode draws one node's fault history over the configured horizon.
// The hot path — nodes with no faults at all — costs one Poisson draw, so
// fleet-scale Monte Carlo stays cheap.
func (m *Model) SampleNode(rng *stats.RNG) NodeFaults {
	return m.SampleNodeScratch(rng, nil)
}

// SampleNodeScratch is SampleNode with caller-owned working buffers (nil sc
// allocates fresh ones). The sampled history — and the RNG stream consumed —
// is bit-identical to SampleNode's; only the scratch allocations differ.
func (m *Model) SampleNodeScratch(rng *stats.RNG, sc *SampleScratch) NodeFaults {
	nf, _ := m.sampleNode(rng, sc, 1)
	return nf
}

// SampleNodeBiased draws one node's fault history with the fault-arrival
// rate multiplied by boost (importance sampling on the Poisson arrival
// process: multi-fault nodes are oversampled) and returns the history along
// with the log likelihood ratio log(P_target / P_proposal) of the sampled
// arrival count — the trial's reweighting factor. Boost 1 consumes an RNG
// stream bit-identical to SampleNodeScratch and returns log-ratio 0.
func (m *Model) SampleNodeBiased(rng *stats.RNG, sc *SampleScratch, boost float64) (NodeFaults, float64) {
	return m.sampleNode(rng, sc, boost)
}

// maxISLogWeight bounds the per-trial importance weight of the boosted
// sampler: the effective boost is capped at 1 + maxISLogWeight/λ so no
// weight exceeds e^maxISLogWeight (≈7.4), keeping the reweighted
// estimator's variance finite for every node class.
const maxISLogWeight = 2.0

// sampleNode is the shared arrival-process kernel behind the unbiased and
// boosted samplers: only the Poisson mean differs (lambda vs lambda times
// the weight-capped effective boost); given the arrival count, the
// per-fault details are drawn identically.
func (m *Model) sampleNode(rng *stats.RNG, sc *SampleScratch, boost float64) (NodeFaults, float64) {
	if sc == nil {
		sc = &SampleScratch{}
	}
	g := m.cfg.Geometry
	nDIMMs := g.DIMMs()
	nf := NodeFaults{}
	nodeMult := m.adjustedMult
	if rng.Bool(m.cfg.AccelNodeFrac) {
		nf.NodeAccelerated = true
		nodeMult = m.cfg.AccelFactor
	}
	// DIMM-level acceleration applies to DIMMs in otherwise-normal nodes.
	sc.dimmMult = grow(sc.dimmMult, nDIMMs)
	dimmMult := sc.dimmMult
	accel := sc.accel[:0]
	lambda := 0.0
	perDevRate := FITToRate(m.totalFIT) * m.cfg.Hours
	for d := 0; d < nDIMMs; d++ {
		mult := nodeMult
		if !nf.NodeAccelerated && rng.Bool(m.cfg.AccelDIMMFrac) {
			mult = m.cfg.AccelFactor
			accel = append(accel, d)
		}
		dimmMult[d] = mult
		lambda += mult * float64(m.devPerDMM) * perDevRate
	}
	sc.accel = accel
	if len(accel) > 0 {
		nf.AcceleratedDIMMs = accel
	}
	// Weight-bounded boosting: cap the effective boost so the zero-count
	// weight e^{λ(b−1)} never exceeds e^maxISLogWeight. Nodes whose arrival
	// rate is already large (the accelerated 0.1%) are thereby barely
	// boosted — they need no oversampling, and boosting them uncapped gives
	// the likelihood-ratio weights unbounded variance (the estimator then
	// systematically underestimates in any finite sample).
	b := boost
	if b > 1 && lambda > 0 {
		if bCap := 1 + maxISLogWeight/lambda; b > bCap {
			b = bCap
		}
	}
	mean := lambda
	if b != 1 {
		mean = lambda * b
	}
	n := rng.Poisson(mean)
	logLR := stats.PoissonLogLR(lambda, b, n)
	if n == 0 {
		return nf, logLR
	}

	// Materialise per-device lognormal weights only for nodes that have
	// faults. The weight is shared across a device's fault processes; the
	// paper draws one rate per process per device, which at fleet scale is
	// statistically indistinguishable for the metrics reported (the
	// weights matter through same-device and same-DIMM clustering).
	sc.weights = grow(sc.weights, nDIMMs*m.devPerDMM)
	weights := sc.weights
	var totalW float64
	for i := range weights {
		w := rng.Lognormal(1, m.cfg.VarianceFrac) * dimmMult[i/m.devPerDMM]
		weights[i] = w
		totalW += w
	}

	faults := sc.ptrs[:0]
	for i := 0; i < n; i++ {
		// Pick the device by weight.
		target := rng.Float64() * totalW
		devIdx := 0
		for acc := 0.0; devIdx < len(weights)-1; devIdx++ {
			acc += weights[devIdx]
			if target < acc {
				break
			}
		}
		dimm := devIdx / m.devPerDMM
		dev := dram.DeviceCoord{
			Channel: dimm / g.DIMMsPerChan,
			Rank:    dimm % g.DIMMsPerChan,
			Device:  devIdx % m.devPerDMM,
		}
		slot, rowBuf := sc.fault(i)
		f := m.sampleFault(rng, dev, slot, rowBuf)
		f.AtHours = rng.Float64() * m.cfg.Hours
		faults = append(faults, f)
	}
	sc.ptrs = faults
	// Insertion sort by arrival time: stable, allocation-free, and (arrival
	// times are distinct continuous draws) identical in output to the
	// sort.Slice it replaced. Fault counts per node are tiny.
	for i := 1; i < len(faults); i++ {
		f := faults[i]
		j := i - 1
		for j >= 0 && faults[j].AtHours > f.AtHours {
			faults[j+1] = faults[j]
			j--
		}
		faults[j+1] = f
	}
	nf.Faults = faults
	return nf, logLR
}

// NumStrata returns the number of (mode, persistence) fault classes the
// stratified sampler can condition on: 2*NumModes, indexed like modeCDF
// (2*mode for transient, 2*mode+1 for permanent).
func (m *Model) NumStrata() int { return 2 * int(NumModes) }

// StratumProb returns the probability that a single fault draw lands in
// class s (its FIT share of the total rate). Classes with zero configured
// rate have probability 0 and must not be conditioned on.
func (m *Model) StratumProb(s int) float64 {
	if s < 0 || s >= len(m.modeCDF) {
		return 0
	}
	p := m.modeCDF[s]
	if s > 0 {
		p -= m.modeCDF[s-1]
	}
	return p / m.totalFIT
}

// SampleNodeStratified draws one node's fault history conditioned on the
// stratum (N ≥ 1, first-arrival draw in class s): the Poisson count is
// redrawn from its positive tail and the first fault's (mode, persistence)
// class is forced to s, with everything else — acceleration, device pick,
// extents, arrival times — drawn as usual. The returned weight is the
// stratum probability P(N ≥ 1)·P(class s) = (1 − e^{−λ})·p_s; the caller
// divides by its allocation fraction across strata. The complementary
// "no faults" stratum contributes zero to every tallied metric and is never
// simulated, which is where the variance reduction comes from.
func (m *Model) SampleNodeStratified(rng *stats.RNG, sc *SampleScratch, s int) (NodeFaults, float64) {
	if sc == nil {
		sc = &SampleScratch{}
	}
	ps := m.StratumProb(s)
	g := m.cfg.Geometry
	nDIMMs := g.DIMMs()
	nf := NodeFaults{}
	nodeMult := m.adjustedMult
	if rng.Bool(m.cfg.AccelNodeFrac) {
		nf.NodeAccelerated = true
		nodeMult = m.cfg.AccelFactor
	}
	sc.dimmMult = grow(sc.dimmMult, nDIMMs)
	dimmMult := sc.dimmMult
	accel := sc.accel[:0]
	lambda := 0.0
	perDevRate := FITToRate(m.totalFIT) * m.cfg.Hours
	for d := 0; d < nDIMMs; d++ {
		mult := nodeMult
		if !nf.NodeAccelerated && rng.Bool(m.cfg.AccelDIMMFrac) {
			mult = m.cfg.AccelFactor
			accel = append(accel, d)
		}
		dimmMult[d] = mult
		lambda += mult * float64(m.devPerDMM) * perDevRate
	}
	sc.accel = accel
	if len(accel) > 0 {
		nf.AcceleratedDIMMs = accel
	}
	weight := -math.Expm1(-lambda) * ps // (1 − e^{−λ}) · p_s
	n := poissonAtLeast1(rng, lambda)

	sc.weights = grow(sc.weights, nDIMMs*m.devPerDMM)
	weights := sc.weights
	var totalW float64
	for i := range weights {
		w := rng.Lognormal(1, m.cfg.VarianceFrac) * dimmMult[i/m.devPerDMM]
		weights[i] = w
		totalW += w
	}

	faults := sc.ptrs[:0]
	for i := 0; i < n; i++ {
		target := rng.Float64() * totalW
		devIdx := 0
		for acc := 0.0; devIdx < len(weights)-1; devIdx++ {
			acc += weights[devIdx]
			if target < acc {
				break
			}
		}
		dimm := devIdx / m.devPerDMM
		dev := dram.DeviceCoord{
			Channel: dimm / g.DIMMsPerChan,
			Rank:    dimm % g.DIMMsPerChan,
			Device:  devIdx % m.devPerDMM,
		}
		slot, rowBuf := sc.fault(i)
		var f *Fault
		if i == 0 {
			f = m.sampleFaultClass(rng, dev, slot, rowBuf, s)
		} else {
			f = m.sampleFault(rng, dev, slot, rowBuf)
		}
		f.AtHours = rng.Float64() * m.cfg.Hours
		faults = append(faults, f)
	}
	sc.ptrs = faults
	for i := 1; i < len(faults); i++ {
		f := faults[i]
		j := i - 1
		for j >= 0 && faults[j].AtHours > f.AtHours {
			faults[j+1] = faults[j]
			j--
		}
		faults[j+1] = f
	}
	nf.Faults = faults
	return nf, weight
}

// poissonAtLeast1 draws from Poisson(mean) conditioned on a positive count.
// Small means use exact sequential inversion of the zero-truncated CDF (the
// rejection loop would spin 1/(1−e^{−mean}) expected iterations); large
// means reject the (astronomically rare) zeros.
func poissonAtLeast1(rng *stats.RNG, mean float64) int {
	if mean <= 0 {
		// Conditioning on an impossible event; the caller's stratum weight
		// (1 − e^{−mean}) is 0, so the returned history never contributes.
		return 1
	}
	if mean < 30 {
		u := rng.Float64() * -math.Expm1(-mean) // U(0, 1 − e^{−mean})
		t := mean * math.Exp(-mean)             // P(N = 1)
		cum := t
		k := 1
		for u >= cum && k < 1<<20 {
			k++
			t *= mean / float64(k)
			cum += t
		}
		return k
	}
	for {
		if n := rng.Poisson(mean); n > 0 {
			return n
		}
	}
}

// sampleFault draws the mode, persistence, and extents of one fault into f
// (a reusable arena object whose extent backing is recycled; rowBuf is the
// slot's reusable row-list storage).
func (m *Model) sampleFault(rng *stats.RNG, dev dram.DeviceCoord, f *Fault, rowBuf *[]int) *Fault {
	target := rng.Float64() * m.totalFIT
	idx := sort.SearchFloat64s(m.modeCDF, target)
	if idx >= len(m.modeCDF) {
		idx = len(m.modeCDF) - 1
	}
	return m.sampleFaultClass(rng, dev, f, rowBuf, idx)
}

// sampleFaultClass is sampleFault with the (mode, persistence) class forced
// to idx (modeCDF indexing) instead of drawn — the stratified sampler's
// entry point for the conditioned first fault.
func (m *Model) sampleFaultClass(rng *stats.RNG, dev dram.DeviceCoord, f *Fault, rowBuf *[]int, idx int) *Fault {
	mode := Mode(idx / 2)
	transient := idx%2 == 0
	ext := f.Extents[:0]
	*f = Fault{Dev: dev, Mode: mode, Transient: transient}
	m.sampleExtents(rng, f, ext, rowBuf)
	if f.Permanent() && rng.Bool(m.cfg.Shape.IntermittentFrac) {
		f.Intermittent = true
		f.ActivationsPerHour = logUniform(rng, m.cfg.Shape.ActivationMinPerHour, m.cfg.Shape.ActivationMaxPerHour)
	}
	return f
}

// logUniform samples log-uniformly in [lo, hi].
func logUniform(rng *stats.RNG, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		return lo
	}
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

// sampleExtents fills f.Extents according to the mode and shape parameters.
// ext is the recycled extent buffer ([:0] of the slot's previous backing);
// rowBuf is the slot's reusable row-list storage, updated in place when a
// list-shaped extent grows it.
func (m *Model) sampleExtents(rng *stats.RNG, f *Fault, ext []Extent, rowBuf *[]int) {
	g := m.cfg.Geometry
	sp := m.cfg.Shape
	bank := rng.Intn(g.Banks)
	switch f.Mode {
	case SingleBit:
		row := rng.Intn(g.Rows)
		if rng.Bool(sp.WordFrac) {
			blk := rng.Intn(g.ColBlocks())
			f.Extents = append(ext, Extent{
				BankLo: bank, BankHi: bank,
				Rows:  OneRow(row),
				ColLo: blk * g.ColumnsPerBlk, ColHi: (blk+1)*g.ColumnsPerBlk - 1,
			})
		} else {
			col := rng.Intn(g.Columns)
			f.Extents = append(ext, Extent{
				BankLo: bank, BankHi: bank,
				Rows:  OneRow(row),
				ColLo: col, ColHi: col,
			})
		}

	case SingleRow:
		row := rng.Intn(g.Rows)
		rows := OneRow(row)
		if rng.Bool(sp.TwoRowFrac) && row+1 < g.Rows {
			rows = RowRange(row, row+1)
		}
		f.Extents = append(ext, Extent{
			BankLo: bank, BankHi: bank,
			Rows:  rows,
			ColLo: 0, ColHi: g.Columns - 1,
		})

	case SingleColumn:
		col := rng.Intn(g.Columns)
		nSub := g.Rows / dram.SubarrayRows
		if nSub < 1 {
			nSub = 1
		}
		base := rng.Intn(nSub) * dram.SubarrayRows
		top := base + dram.SubarrayRows - 1
		if top >= g.Rows {
			top = g.Rows - 1
		}
		var rows RowSpec
		if rng.Bool(sp.ColFullSubarrayFrac) {
			rows = RowRange(base, top)
		} else {
			k := 2 + rng.Intn(maxi(sp.ColFewRowsMax-1, 1))
			picks := (*rowBuf)[:0]
			for j := 0; j < k; j++ {
				picks = append(picks, base+rng.Intn(top-base+1))
			}
			*rowBuf = picks
			rows = RowList(picks)
		}
		f.Extents = append(ext, Extent{
			BankLo: bank, BankHi: bank,
			Rows:  rows,
			ColLo: col, ColHi: col,
		})

	case SingleBank:
		f.Extents = append(ext, m.sampleBankExtent(rng, bank, bank, rowBuf))

	case MultiBank:
		nb := 2 + rng.Intn(maxi(g.Banks-1, 1))
		if nb > g.Banks {
			nb = g.Banks
		}
		lo := rng.Intn(g.Banks - nb + 1)
		hi := lo + nb - 1
		if rng.Bool(sp.MultiBankWholeFrac) {
			f.Extents = append(ext, Extent{
				BankLo: lo, BankHi: hi,
				Rows:  AllRows(),
				ColLo: 0, ColHi: g.Columns - 1,
			})
		} else {
			f.Extents = append(ext, m.sampleBankExtent(rng, lo, hi, rowBuf))
		}

	case MultiRank:
		f.Extents = append(ext, Extent{
			BankLo: 0, BankHi: g.Banks - 1,
			Rows:  AllRows(),
			ColLo: 0, ColHi: g.Columns - 1,
		})
		f.MirrorRanks = true
	}
}

// sampleBankExtent draws the in-bank structure of a bank-mode fault:
// whole-bank, a cluster of rows at random positions, or a cluster of
// adjacent columns through one or more subarrays.
func (m *Model) sampleBankExtent(rng *stats.RNG, bankLo, bankHi int, rowBuf *[]int) Extent {
	g := m.cfg.Geometry
	sp := m.cfg.Shape
	switch {
	case rng.Bool(sp.BankWholeFrac):
		return Extent{
			BankLo: bankLo, BankHi: bankHi,
			Rows:  AllRows(),
			ColLo: 0, ColHi: g.Columns - 1,
		}
	case rng.Bool(sp.BankRowClusterFrac):
		maxRows := maxi(sp.BankClusterMaxRows, 2)
		k := int(math.Round(logUniform(rng, 2, float64(maxRows))))
		if k > g.Rows {
			k = g.Rows
		}
		picks := (*rowBuf)[:0]
		for j := 0; j < k; j++ {
			picks = append(picks, rng.Intn(g.Rows))
		}
		*rowBuf = picks
		return Extent{
			BankLo: bankLo, BankHi: bankHi,
			Rows:  RowList(picks),
			ColLo: 0, ColHi: g.Columns - 1,
		}
	default:
		width := 2 + rng.Intn(maxi(sp.BankColClusterMaxCols-1, 1))
		colLo := rng.Intn(maxi(g.Columns-width, 1))
		nSubTotal := maxi(g.Rows/dram.SubarrayRows, 1)
		span := 1 + rng.Intn(maxi(sp.BankColClusterMaxSubarrays, 1))
		if span > nSubTotal {
			span = nSubTotal
		}
		base := rng.Intn(nSubTotal-span+1) * dram.SubarrayRows
		top := base + span*dram.SubarrayRows - 1
		if top >= g.Rows {
			top = g.Rows - 1
		}
		return Extent{
			BankLo: bankLo, BankHi: bankHi,
			Rows:  RowRange(base, top),
			ColLo: colLo, ColHi: colLo + width - 1,
		}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
